#ifndef COACHLM_TUNING_TUNED_MODEL_H_
#define COACHLM_TUNING_TUNED_MODEL_H_

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"
#include "synth/content_engine.h"
#include "synth/defect.h"
#include "tuning/model_spec.h"

namespace coachlm {
namespace tuning {

/// \brief Alignment one category's training data induced.
struct CategoryAlignment {
  /// Mean response quality (0-1) of training pairs in the category.
  double quality = 0.0;
  /// Coverage saturation n/(n+k): how much data backed this category.
  double coverage = 0.0;
};

/// \brief What instruction tuning extracted from a training dataset.
///
/// This is the substitution documented in DESIGN.md: the paper's central
/// claim is that an instruction-tuned model's ability is a function of its
/// training data's *quality* and *diversity* — so the simulated tuned
/// model is parameterized by exactly (and only) those two measured
/// properties, per category and globally.
struct AlignmentProfile {
  double global_quality = 0.0;
  std::map<Category, CategoryAlignment> per_category;
  /// Alignment granted to categories never seen in training (weak
  /// cross-task generalization).
  double unseen_generalization = 0.45;
  /// Data-volume factor in (0, 1]: instruction tuning on a small dataset
  /// expresses less of its quality (the paper's AlpaGasus keeps only ~9k
  /// of 52k pairs and gains little despite far higher-rated data).
  /// Profile-built models (proprietary data) default to 1.0.
  double volume_factor = 1.0;
};

/// \brief An instruction-tuned LLM producing text responses.
///
/// `Respond` composes an answer whose richness, tone, and slip rate derive
/// from `q = base_knowledge * (w_g * global + w_c * align(category))` plus
/// seeded noise. All judging downstream happens on the produced *text*
/// through the Table II analyzers — no win rate is ever hard-coded.
class TunedModel {
 public:
  TunedModel(ModelSpec spec, AlignmentProfile alignment);

  /// Effective response quality in [0, 1] for a category (pre-noise).
  double QualityFor(Category category) const;

  /// Generates a response to the task (the task's own output is ignored).
  std::string Respond(const InstructionPair& task, Rng* rng) const;

  const ModelSpec& spec() const { return spec_; }
  const AlignmentProfile& alignment() const { return alignment_; }

 private:
  ModelSpec spec_;
  AlignmentProfile alignment_;
  std::shared_ptr<synth::ContentEngine> engine_;
  std::shared_ptr<synth::DefectInjector> injector_;
};

}  // namespace tuning
}  // namespace coachlm

#endif  // COACHLM_TUNING_TUNED_MODEL_H_
