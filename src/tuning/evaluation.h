#ifndef COACHLM_TUNING_EVALUATION_H_
#define COACHLM_TUNING_EVALUATION_H_

#include <map>

#include "common/execution.h"
#include "common/runtime.h"
#include "judge/pairwise_judge.h"
#include "judge/verdict.h"
#include "testsets/testset.h"
#include "tuning/tuned_model.h"

namespace coachlm {
namespace tuning {

/// \brief Win-rate evaluation of one model on one test set.
struct EvalResult {
  judge::VerdictCounts counts;
  judge::WinRates rates;
};

/// \brief Runs the Section III-C1 protocol: for every test item the model
/// responds, the judge compares the response against the reference with
/// the swap-order debiasing, and the verdicts aggregate into WR1/WR2/QS.
///
/// Responses and judgments are deterministic in (model, set, judge, seed):
/// each item runs under its own id-derived RNG stream, so the evaluation
/// parallelizes over \p exec with byte-identical verdicts at any thread
/// count.
///
/// Each item's judgment runs under \p runtime (nullptr =
/// PipelineRuntime::Default()) at FaultSite::kJudge: an item that fails
/// permanently is skipped (excluded from the verdict counts, recorded in
/// quarantine) instead of failing the evaluation.
EvalResult EvaluateModel(
    const TunedModel& model, const testsets::TestSet& test_set,
    const judge::PairwiseJudge& judge, uint64_t seed = 5150,
    const ExecutionContext& exec = ExecutionContext::Default(),
    PipelineRuntime* runtime = nullptr);

/// Per-category breakdown (used to expose the AlpaGasus coding
/// regression of Section II-A(3)).
std::map<Category, EvalResult> EvaluateModelPerCategory(
    const TunedModel& model, const testsets::TestSet& test_set,
    const judge::PairwiseJudge& judge, uint64_t seed = 5150,
    const ExecutionContext& exec = ExecutionContext::Default(),
    PipelineRuntime* runtime = nullptr);

}  // namespace tuning
}  // namespace coachlm

#endif  // COACHLM_TUNING_EVALUATION_H_
