#include "tuning/instruction_tuner.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/metrics.h"
#include "common/trace.h"
#include "quality/accuracy_rater.h"

namespace coachlm {
namespace tuning {

AlignmentProfile InstructionTuner::MeasureAlignment(
    const InstructionDataset& dataset, const ExecutionContext& exec,
    PipelineRuntime* runtime) const {
  const StageSpan span("tune");
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  AlignmentProfile profile;
  quality::AccuracyRater rater;
  // Rate in parallel, then fold the sums serially in dataset order — the
  // floating-point accumulation matches the single-threaded pass exactly.
  // A pair whose rating fails permanently (FaultSite::kTune) is excluded
  // from the fold: the profile degrades to the measurable subset instead
  // of the measurement aborting.
  const std::vector<std::optional<double>> ratings = exec.ParallelMap(
      dataset.size(), [&](size_t i) -> std::optional<double> {
        std::optional<double> rating;
        // Per-item failures are absorbed: the runtime quarantines the
        // record and a nullopt rating excludes it from the mean.
        (void)runtime->Run(FaultSite::kTune, dataset[i].id, [&] {
          rating = rater.Rate(dataset[i]) / 5.0;
          return Status::OK();
        });
        return rating;
      });
  std::map<Category, std::pair<double, size_t>> sums;  // sum, count
  double global_sum = 0.0;
  size_t rated = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (!ratings[i].has_value()) continue;
    ++rated;
    global_sum += *ratings[i];
    auto& [sum, count] = sums[dataset[i].category];
    sum += *ratings[i];
    ++count;
  }
  CountMetric("tune.items_rated", rated);
  if (rated > 0) {
    profile.global_quality = global_sum / static_cast<double>(rated);
  }
  // Volume: small training sets express less of their quality. Gentle
  // saturation — a 52k corpus sits at ~0.99, a 9k filtered subset at ~0.96
  // — enough that filtering's volume cost shows without drowning its
  // quality gain (the paper's AlpaGasus lands slightly above Alpaca).
  const double n_total = static_cast<double>(dataset.size());
  profile.volume_factor = 0.85 + 0.15 * n_total / (n_total + 2600.0);
  const double k =
      coverage_k_ > 0.0
          ? coverage_k_
          : std::max(4.0, static_cast<double>(dataset.size()) / 900.0);
  for (const auto& [category, sum_count] : sums) {
    CategoryAlignment alignment;
    const double n = static_cast<double>(sum_count.second);
    alignment.quality = sum_count.first / n;
    alignment.coverage = n / (n + k);
    profile.per_category[category] = alignment;
  }
  return profile;
}

TunedModel InstructionTuner::Tune(const ModelSpec& spec,
                                  const InstructionDataset& dataset,
                                  const ExecutionContext& exec,
                                  PipelineRuntime* runtime) const {
  CountMetric("tune.models_tuned");
  return TunedModel(spec, MeasureAlignment(dataset, exec, runtime));
}

Result<TunedModel> InstructionTuner::TuneFromRecords(
    const ModelSpec& spec, RecordReader* reader, const ExecutionContext& exec,
    PipelineRuntime* runtime) const {
  COACHLM_ASSIGN_OR_RETURN(InstructionDataset dataset,
                           ReadAllRecords(reader));
  return Tune(spec, dataset, exec, runtime);
}

}  // namespace tuning
}  // namespace coachlm
