#include "tuning/instruction_tuner.h"

#include <algorithm>
#include <map>

#include "quality/accuracy_rater.h"

namespace coachlm {
namespace tuning {

AlignmentProfile InstructionTuner::MeasureAlignment(
    const InstructionDataset& dataset, const ExecutionContext& exec) const {
  AlignmentProfile profile;
  quality::AccuracyRater rater;
  // Rate in parallel, then fold the sums serially in dataset order — the
  // floating-point accumulation matches the single-threaded pass exactly.
  const std::vector<double> ratings = exec.ParallelMap(
      dataset.size(), [&](size_t i) { return rater.Rate(dataset[i]) / 5.0; });
  std::map<Category, std::pair<double, size_t>> sums;  // sum, count
  double global_sum = 0.0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    global_sum += ratings[i];
    auto& [sum, count] = sums[dataset[i].category];
    sum += ratings[i];
    ++count;
  }
  if (!dataset.empty()) {
    profile.global_quality = global_sum / static_cast<double>(dataset.size());
  }
  // Volume: small training sets express less of their quality. Gentle
  // saturation — a 52k corpus sits at ~0.99, a 9k filtered subset at ~0.96
  // — enough that filtering's volume cost shows without drowning its
  // quality gain (the paper's AlpaGasus lands slightly above Alpaca).
  const double n_total = static_cast<double>(dataset.size());
  profile.volume_factor = 0.85 + 0.15 * n_total / (n_total + 2600.0);
  const double k =
      coverage_k_ > 0.0
          ? coverage_k_
          : std::max(4.0, static_cast<double>(dataset.size()) / 900.0);
  for (const auto& [category, sum_count] : sums) {
    CategoryAlignment alignment;
    const double n = static_cast<double>(sum_count.second);
    alignment.quality = sum_count.first / n;
    alignment.coverage = n / (n + k);
    profile.per_category[category] = alignment;
  }
  return profile;
}

TunedModel InstructionTuner::Tune(const ModelSpec& spec,
                                  const InstructionDataset& dataset,
                                  const ExecutionContext& exec) const {
  return TunedModel(spec, MeasureAlignment(dataset, exec));
}

}  // namespace tuning
}  // namespace coachlm
