#include "tuning/evaluation.h"

namespace coachlm {
namespace tuning {

EvalResult EvaluateModel(const TunedModel& model,
                         const testsets::TestSet& test_set,
                         const judge::PairwiseJudge& judge, uint64_t seed) {
  EvalResult result;
  for (const InstructionPair& item : test_set.items) {
    Rng rng(seed ^ (item.id * 0x9E3779B97F4A7C15ULL));
    const std::string response = model.Respond(item, &rng);
    const judge::Verdict verdict =
        judge.CompareDebiased(item, response, item.output, &rng);
    result.counts.Add(verdict);
  }
  result.rates = judge::ComputeWinRates(result.counts);
  return result;
}

std::map<Category, EvalResult> EvaluateModelPerCategory(
    const TunedModel& model, const testsets::TestSet& test_set,
    const judge::PairwiseJudge& judge, uint64_t seed) {
  std::map<Category, EvalResult> per_category;
  for (const InstructionPair& item : test_set.items) {
    Rng rng(seed ^ (item.id * 0x9E3779B97F4A7C15ULL));
    const std::string response = model.Respond(item, &rng);
    const judge::Verdict verdict =
        judge.CompareDebiased(item, response, item.output, &rng);
    per_category[item.category].counts.Add(verdict);
  }
  for (auto& [category, result] : per_category) {
    result.rates = judge::ComputeWinRates(result.counts);
  }
  return per_category;
}

}  // namespace tuning
}  // namespace coachlm
