#include "tuning/evaluation.h"

#include <vector>

namespace coachlm {
namespace tuning {
namespace {

/// One item's verdict under its own id-derived stream: response generation
/// and the debiased comparison share the stream, exactly as in the serial
/// protocol.
judge::Verdict JudgeItem(const TunedModel& model,
                         const judge::PairwiseJudge& judge,
                         const InstructionPair& item, uint64_t seed) {
  Rng rng = DeriveRng(seed, item.id);
  const std::string response = model.Respond(item, &rng);
  return judge.CompareDebiased(item, response, item.output, &rng);
}

}  // namespace

EvalResult EvaluateModel(const TunedModel& model,
                         const testsets::TestSet& test_set,
                         const judge::PairwiseJudge& judge, uint64_t seed,
                         const ExecutionContext& exec) {
  EvalResult result;
  const std::vector<judge::Verdict> verdicts =
      exec.ParallelMap(test_set.items.size(), [&](size_t i) {
        return JudgeItem(model, judge, test_set.items[i], seed);
      });
  for (const judge::Verdict verdict : verdicts) {
    result.counts.Add(verdict);
  }
  result.rates = judge::ComputeWinRates(result.counts);
  return result;
}

std::map<Category, EvalResult> EvaluateModelPerCategory(
    const TunedModel& model, const testsets::TestSet& test_set,
    const judge::PairwiseJudge& judge, uint64_t seed,
    const ExecutionContext& exec) {
  const std::vector<judge::Verdict> verdicts =
      exec.ParallelMap(test_set.items.size(), [&](size_t i) {
        return JudgeItem(model, judge, test_set.items[i], seed);
      });
  std::map<Category, EvalResult> per_category;
  for (size_t i = 0; i < test_set.items.size(); ++i) {
    per_category[test_set.items[i].category].counts.Add(verdicts[i]);
  }
  for (auto& [category, result] : per_category) {
    result.rates = judge::ComputeWinRates(result.counts);
  }
  return per_category;
}

}  // namespace tuning
}  // namespace coachlm
