#include "tuning/evaluation.h"

#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace coachlm {
namespace tuning {
namespace {

/// One item's verdict under its own id-derived stream: response generation
/// and the debiased comparison share the stream, exactly as in the serial
/// protocol.
judge::Verdict JudgeItem(const TunedModel& model,
                         const judge::PairwiseJudge& judge,
                         const InstructionPair& item, uint64_t seed) {
  Rng rng = DeriveRng(seed, item.id);
  const std::string response = model.Respond(item, &rng);
  return judge.CompareDebiased(item, response, item.output, &rng);
}

/// All verdicts, judged under the runtime at FaultSite::kJudge. A nullopt
/// slot is an item whose judgment failed permanently: Run() has already
/// quarantined it, and the aggregations below skip it.
std::vector<std::optional<judge::Verdict>> JudgeTestSet(
    const TunedModel& model, const testsets::TestSet& test_set,
    const judge::PairwiseJudge& judge, uint64_t seed,
    const ExecutionContext& exec, PipelineRuntime* runtime) {
  const StageSpan span("judge");
  std::vector<std::optional<judge::Verdict>> verdicts = exec.ParallelMap(
      test_set.items.size(), [&](size_t i) -> std::optional<judge::Verdict> {
        std::optional<judge::Verdict> verdict;
        // Per-item failures are absorbed: the runtime quarantines the
        // record and a nullopt verdict marks the item unjudged.
        (void)runtime->Run(FaultSite::kJudge, test_set.items[i].id, [&] {
          verdict = JudgeItem(model, judge, test_set.items[i], seed);
          return Status::OK();
        });
        return verdict;
      });
  size_t judged = 0;
  for (const std::optional<judge::Verdict>& verdict : verdicts) {
    if (verdict.has_value()) ++judged;
  }
  CountMetric("judge.items_judged", judged);
  CountMetric("judge.items_unjudged", verdicts.size() - judged);
  return verdicts;
}

}  // namespace

EvalResult EvaluateModel(const TunedModel& model,
                         const testsets::TestSet& test_set,
                         const judge::PairwiseJudge& judge, uint64_t seed,
                         const ExecutionContext& exec,
                         PipelineRuntime* runtime) {
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  EvalResult result;
  const std::vector<std::optional<judge::Verdict>> verdicts =
      JudgeTestSet(model, test_set, judge, seed, exec, runtime);
  for (const std::optional<judge::Verdict>& verdict : verdicts) {
    if (verdict.has_value()) result.counts.Add(*verdict);
  }
  result.rates = judge::ComputeWinRates(result.counts);
  return result;
}

std::map<Category, EvalResult> EvaluateModelPerCategory(
    const TunedModel& model, const testsets::TestSet& test_set,
    const judge::PairwiseJudge& judge, uint64_t seed,
    const ExecutionContext& exec, PipelineRuntime* runtime) {
  if (runtime == nullptr) runtime = PipelineRuntime::Default();
  const std::vector<std::optional<judge::Verdict>> verdicts =
      JudgeTestSet(model, test_set, judge, seed, exec, runtime);
  std::map<Category, EvalResult> per_category;
  for (size_t i = 0; i < test_set.items.size(); ++i) {
    if (!verdicts[i].has_value()) continue;
    per_category[test_set.items[i].category].counts.Add(*verdicts[i]);
  }
  for (auto& [category, result] : per_category) {
    result.rates = judge::ComputeWinRates(result.counts);
  }
  return per_category;
}

}  // namespace tuning
}  // namespace coachlm
