#include "tuning/model_zoo.h"

#include "tuning/baselines.h"

namespace coachlm {
namespace tuning {

AlignmentProfile UniformProfile(double quality, double coverage) {
  AlignmentProfile profile;
  profile.global_quality = quality;
  for (Category category : AllCategories()) {
    profile.per_category[category] = CategoryAlignment{quality, coverage};
  }
  return profile;
}

std::vector<ZooEntry> BuildBaselineGroup(const ZooInputs& inputs,
                                         const InstructionTuner& tuner,
                                         const ExecutionContext& exec) {
  std::vector<ZooEntry> zoo;

  // Vicuna-7b: tuned on 70k user-shared ChatGPT conversations — strong
  // uniform quality, near-complete coverage.
  {
    ModelSpec spec = Llama7BBase("Vicuna-7b");
    zoo.push_back(
        {TunedModel(spec, UniformProfile(0.86, 0.90)), "I-tuned", false});
  }
  // Alpaca: the original 52k corpus.
  zoo.push_back({tuner.Tune(Llama7BBase("Alpaca"), *inputs.original, exec),
                 "I-tuned", false});
  // Alpaca-cleaned: rule-based surface cleaning of the same corpus.
  zoo.push_back({tuner.Tune(Llama7BBase("Alpaca-cleaned"),
                            CleanDatasetRuleBased(*inputs.original), exec),
                 "I-tuned", false});
  // Alpaca-PandaLM: same data, hyper-parameters optimized via PandaLM
  // (the paper's [24]); modeled as a slightly better-expressed tune.
  {
    ModelSpec spec = Llama7BBase("Alpaca-PandaLM");
    spec.base_knowledge *= 1.06;
    spec.base_slip *= 0.8;
    zoo.push_back({tuner.Tune(spec, *inputs.original, exec), "I-tuned", false});
  }
  // AlpaGasus: the 4.5-filtered subset (~17.7% of the corpus).
  zoo.push_back({tuner.Tune(Llama7BBase("AlpaGasus"),
                            FilterAlpaGasus(*inputs.original), exec),
                 "I-tuned", false});
  // Alpaca-human: expert-revised subset merged back into the corpus.
  zoo.push_back({tuner.Tune(Llama7BBase("Alpaca-human"),
                            *inputs.human_merged, exec),
                 "I-tuned", false});
  // Alpaca-CoachLM: the CoachLM-revised corpus.
  zoo.push_back({tuner.Tune(Llama7BBase("Alpaca-CoachLM"),
                            *inputs.coach_revised, exec),
                 "I-tuned", false});
  return zoo;
}

std::vector<ZooEntry> BuildStrongerGroup() {
  std::vector<ZooEntry> zoo;
  {
    ModelSpec spec = Llama13BBase("LLaMA2-13b-chat");
    spec.rl_tuned = true;
    zoo.push_back(
        {TunedModel(spec, UniformProfile(0.93, 0.97)), "RL-tuned", true});
  }
  {
    ModelSpec spec = Llama13BBase("Vicuna-13b");
    zoo.push_back(
        {TunedModel(spec, UniformProfile(0.86, 0.92)), "I-tuned", true});
  }
  {
    ModelSpec spec = Llama7BBase("LLaMA2-7b-chat");
    spec.rl_tuned = true;
    zoo.push_back(
        {TunedModel(spec, UniformProfile(0.93, 0.97)), "RL-tuned", true});
  }
  {
    // ChatGLM edges out ChatGLM2 on several of the paper's test sets
    // (Table IX); its alignment data reads slightly stronger here.
    ModelSpec spec = Glm6BBase("ChatGLM");
    spec.rl_tuned = true;
    zoo.push_back(
        {TunedModel(spec, UniformProfile(0.90, 0.93)), "RL-tuned", true});
  }
  {
    ModelSpec spec = Glm6BBase("ChatGLM2");
    spec.rl_tuned = true;
    zoo.push_back(
        {TunedModel(spec, UniformProfile(0.87, 0.93)), "RL-tuned", true});
  }
  return zoo;
}

}  // namespace tuning
}  // namespace coachlm
