#include "tuning/baselines.h"

#include "quality/accuracy_rater.h"
#include "text/repair.h"
#include "text/string_util.h"

namespace coachlm {
namespace tuning {

InstructionDataset CleanDatasetRuleBased(const InstructionDataset& dataset) {
  InstructionDataset cleaned = dataset;
  for (InstructionPair& pair : cleaned.pairs()) {
    std::string out = pair.output;
    out = strings::ReplaceAll(out, "OUTPUT:", "");
    out = strings::Trim(out);
    if (!strings::Contains(out, "\n") &&
        (strings::Contains(out, " - ") || strings::Contains(out, " 2. "))) {
      out = repair::ReflowLists(out);
    }
    out = repair::CollapseSpaces(out);
    pair.output = out;
  }
  return cleaned;
}

InstructionDataset FilterAlpaGasus(const InstructionDataset& dataset,
                                   double threshold) {
  quality::AccuracyRater rater;
  InstructionDataset filtered;
  for (const InstructionPair& pair : dataset) {
    if (rater.Rate(pair) >= threshold) filtered.Add(pair);
  }
  return filtered;
}

}  // namespace tuning
}  // namespace coachlm
