#include "judge/pairwise_judge.h"

#include "quality/criteria.h"

namespace coachlm {
namespace judge {

JudgeProfile PandaLmProfile() {
  JudgeProfile profile;
  profile.name = "PandaLM-7b";
  // PandaLM reaches 88.3% agreement with GPT-4 (Section III-A1d): a bit
  // noisier than GPT-4, but free of position bias.
  profile.noise_stddev = 3.6;
  profile.tie_margin = 2.5;
  profile.position_bias = 0.0;
  return profile;
}

JudgeProfile Gpt4Profile() {
  JudgeProfile profile;
  profile.name = "GPT-4";
  profile.noise_stddev = 2.8;
  profile.tie_margin = 2.5;
  // The reported evaluation bias when swapping candidates [24]: the first
  // displayed answer reads slightly better to the judge.
  profile.position_bias = 2.0;
  return profile;
}

double PairwiseJudge::PerceivedQuality(const InstructionPair& task,
                                       const std::string& response,
                                       Rng* rng) const {
  InstructionPair candidate = task;
  candidate.output = response;
  const quality::QualityScore score =
      quality::ResponseScorer().Score(candidate);
  return score.score + rng->NextGaussian(0.0, profile_.noise_stddev);
}

Verdict PairwiseJudge::Compare(const InstructionPair& task,
                               const std::string& response_a,
                               const std::string& response_b,
                               Rng* rng) const {
  const double quality_a =
      PerceivedQuality(task, response_a, rng) + profile_.position_bias;
  const double quality_b = PerceivedQuality(task, response_b, rng);
  const double delta = quality_a - quality_b;
  if (delta > profile_.tie_margin) return Verdict::kWin;
  if (delta < -profile_.tie_margin) return Verdict::kLose;
  return Verdict::kTie;
}

Verdict PairwiseJudge::CompareDebiased(const InstructionPair& task,
                                       const std::string& response_a,
                                       const std::string& response_b,
                                       Rng* rng) const {
  const Verdict forward = Compare(task, response_a, response_b, rng);
  const Verdict backward = Flip(Compare(task, response_b, response_a, rng));
  if (forward == backward) return forward;
  // Conflicting win/lose verdicts become a tie; win+tie stays win,
  // lose+tie stays lose.
  if ((forward == Verdict::kWin && backward == Verdict::kLose) ||
      (forward == Verdict::kLose && backward == Verdict::kWin)) {
    return Verdict::kTie;
  }
  if (forward == Verdict::kTie) return backward;
  return forward;
}

}  // namespace judge
}  // namespace coachlm
