#include "judge/verdict.h"

#include <array>

namespace coachlm {
namespace judge {

const std::string& VerdictName(Verdict verdict) {
  static const std::array<std::string, 3> kNames = {"win", "tie", "lose"};
  return kNames[static_cast<size_t>(verdict)];
}

Verdict Flip(Verdict verdict) {
  switch (verdict) {
    case Verdict::kWin:
      return Verdict::kLose;
    case Verdict::kLose:
      return Verdict::kWin;
    case Verdict::kTie:
      return Verdict::kTie;
  }
  return Verdict::kTie;
}

void VerdictCounts::Add(Verdict verdict) {
  switch (verdict) {
    case Verdict::kWin:
      ++wins;
      break;
    case Verdict::kTie:
      ++ties;
      break;
    case Verdict::kLose:
      ++losses;
      break;
  }
}

WinRates ComputeWinRates(const VerdictCounts& counts) {
  WinRates rates;
  const double all = static_cast<double>(counts.Total());
  if (all == 0) return rates;
  rates.wr1 = (static_cast<double>(counts.wins) +
               0.5 * static_cast<double>(counts.ties)) / all;
  const double decided = all - static_cast<double>(counts.ties);
  rates.wr2 = decided > 0
                  ? static_cast<double>(counts.wins) / decided
                  : 0.0;
  rates.qs = (static_cast<double>(counts.wins) +
              static_cast<double>(counts.ties)) / all;
  return rates;
}

}  // namespace judge
}  // namespace coachlm
