#include "judge/human_panel.h"

#include <algorithm>

#include "quality/criteria.h"

namespace coachlm {
namespace judge {

HumanPanel::HumanPanel(uint64_t seed)
    : reviewers_{{{"R1", +1.5, 3.2}, {"R2", -1.0, 3.0}, {"R3", 0.0, 2.6}}},
      rng_(seed) {}

PanelScores HumanPanel::Perturb(double base_score) {
  PanelScores scores;
  for (size_t i = 0; i < reviewers_.size(); ++i) {
    const ReviewerProfile& reviewer = reviewers_[i];
    const double rated = base_score + reviewer.bias +
                         rng_.NextGaussian(0.0, reviewer.noise_stddev);
    scores.reviewer[i] = std::clamp(rated, 0.0, 100.0);
  }
  return scores;
}

PanelScores HumanPanel::RateInstruction(const InstructionPair& pair) {
  return Perturb(quality::InstructionScorer().Score(pair).score);
}

PanelScores HumanPanel::RateResponse(const InstructionPair& pair) {
  return Perturb(quality::ResponseScorer().Score(pair).score);
}

PanelScores HumanPanel::RateResponseText(const InstructionPair& task,
                                         const std::string& response) {
  InstructionPair candidate = task;
  candidate.output = response;
  return RateResponse(candidate);
}

}  // namespace judge
}  // namespace coachlm
