#ifndef COACHLM_JUDGE_PAIRWISE_JUDGE_H_
#define COACHLM_JUDGE_PAIRWISE_JUDGE_H_

#include <string>

#include "common/rng.h"
#include "data/instruction_pair.h"
#include "judge/verdict.h"

namespace coachlm {
namespace judge {

/// \brief Behavioural parameters of a comparison judge.
struct JudgeProfile {
  std::string name;
  /// Gaussian noise on each candidate's perceived quality (0-100 scale).
  double noise_stddev = 3.0;
  /// Quality margin below which the judge declares a tie.
  double tie_margin = 2.5;
  /// Additive bias toward the *first* displayed candidate; GPT-4-style
  /// judges exhibit this position bias (Section III-A1c), PandaLM is
  /// trained to remove it.
  double position_bias = 0.0;
};

/// \brief A pairwise response judge over the Table II response criteria.
///
/// The judge evaluates both candidate responses to the same instruction
/// with the response scorer, perturbs the scores with its noise/bias
/// profile, and declares win/tie/lose for the first candidate.
class PairwiseJudge {
 public:
  explicit PairwiseJudge(JudgeProfile profile) : profile_(std::move(profile)) {}

  /// Compares \p response_a (displayed first) against \p response_b for
  /// the task given by \p task (whose own output field is ignored).
  Verdict Compare(const InstructionPair& task, const std::string& response_a,
                  const std::string& response_b, Rng* rng) const;

  /// The swap-and-reconcile protocol of Section III-A1 (from AlpaGasus):
  /// two ratings with the candidate order swapped; conflicting win/lose
  /// verdicts become a tie; a win+tie (lose+tie) combination stays a win
  /// (lose).
  Verdict CompareDebiased(const InstructionPair& task,
                          const std::string& response_a,
                          const std::string& response_b, Rng* rng) const;

  const JudgeProfile& profile() const { return profile_; }

 private:
  double PerceivedQuality(const InstructionPair& task,
                          const std::string& response, Rng* rng) const;

  JudgeProfile profile_;
};

/// The PandaLM judge: locally deployable, order-debiased by training.
JudgeProfile PandaLmProfile();

/// The GPT-4 judge: stronger rater but position-biased when used raw.
JudgeProfile Gpt4Profile();

}  // namespace judge
}  // namespace coachlm

#endif  // COACHLM_JUDGE_PAIRWISE_JUDGE_H_
