#ifndef COACHLM_JUDGE_VERDICT_H_
#define COACHLM_JUDGE_VERDICT_H_

#include <cstddef>
#include <string>

namespace coachlm {
namespace judge {

/// \brief Outcome of a pairwise response comparison, from the first
/// candidate's perspective.
enum class Verdict { kWin = 0, kTie, kLose };

/// Stable display name ("win"/"tie"/"lose").
const std::string& VerdictName(Verdict verdict);

/// The opposite verdict (win <-> lose, tie fixed).
Verdict Flip(Verdict verdict);

/// \brief Tally of verdicts over a test set.
struct VerdictCounts {
  size_t wins = 0;
  size_t ties = 0;
  size_t losses = 0;

  size_t Total() const { return wins + ties + losses; }
  void Add(Verdict verdict);
};

/// \brief The three win-rate metrics of Section III-C1a.
struct WinRates {
  /// WR1 = (#win + 0.5 #tie) / #all.
  double wr1 = 0.0;
  /// WR2 = #win / (#all - #tie); 0 when every case tied.
  double wr2 = 0.0;
  /// QS = (#win + #tie) / #all — share of responses reaching the
  /// reference level.
  double qs = 0.0;
};

/// Computes all three metrics from a tally.
WinRates ComputeWinRates(const VerdictCounts& counts);

}  // namespace judge
}  // namespace coachlm

#endif  // COACHLM_JUDGE_VERDICT_H_
