#ifndef COACHLM_JUDGE_HUMAN_PANEL_H_
#define COACHLM_JUDGE_HUMAN_PANEL_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/instruction_pair.h"

namespace coachlm {
namespace judge {

/// \brief One group-C reviewer's rating style.
struct ReviewerProfile {
  std::string name;
  /// Additive strictness offset on the 0-100 scale (negative = stricter).
  double bias = 0.0;
  /// Rating noise.
  double noise_stddev = 3.0;
};

/// \brief Scores from the three reviewers plus their mean.
struct PanelScores {
  std::array<double, 3> reviewer = {0.0, 0.0, 0.0};
  double Average() const {
    return (reviewer[0] + reviewer[1] + reviewer[2]) / 3.0;
  }
};

/// \brief The three-reviewer human evaluation panel (group C, Table I).
///
/// Reviewers independently assign 0-100 scores against the Table II
/// criteria, blind to sample sources (Section III-A1a). Each reviewer is
/// the criteria engine plus an individual strictness offset and noise —
/// correlated but distinct raters, as Tables VIII and X require.
class HumanPanel {
 public:
  explicit HumanPanel(uint64_t seed = 97);

  /// Rates the INSTRUCTION side of a pair.
  PanelScores RateInstruction(const InstructionPair& pair);

  /// Rates the RESPONSE side of a pair.
  PanelScores RateResponse(const InstructionPair& pair);

  /// Rates \p response as an answer to \p task.
  PanelScores RateResponseText(const InstructionPair& task,
                               const std::string& response);

  const std::array<ReviewerProfile, 3>& reviewers() const {
    return reviewers_;
  }

 private:
  PanelScores Perturb(double base_score);

  std::array<ReviewerProfile, 3> reviewers_;
  Rng rng_;
};

}  // namespace judge
}  // namespace coachlm

#endif  // COACHLM_JUDGE_HUMAN_PANEL_H_
