// Quickstart: train CoachLM from a handful of expert revisions and revise
// a few deficient instruction pairs, printing before/after with scores.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "coach/pipeline.h"
#include "expert/pipeline.h"
#include "quality/criteria.h"
#include "synth/generator.h"

using namespace coachlm;

int main() {
  // 1. A small ALPACA52K-like corpus with injected quality defects.
  synth::CorpusConfig corpus_config;
  corpus_config.size = 3000;
  corpus_config.seed = 42;
  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate();
  std::printf("generated corpus: %zu pairs\n", corpus.dataset.size());

  // 2. Expert revision study on a sample (Section II-E).
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = 800;
  const expert::RevisionStudyResult study = expert::RunRevisionStudy(
      corpus.dataset, generator.engine(), study_config);
  std::printf("expert study: %zu revised pairs, %.1f person-days\n",
              study.revisions.size(), study.person_days);

  // 3. Coach instruction tuning (alpha = 0.3) + dataset revision (Fig. 2).
  coach::CoachConfig coach_config;
  coach_config.alpha = 0.3;
  const coach::CoachPipelineResult result =
      coach::RunCoachPipeline(corpus.dataset, study.revisions, coach_config);
  std::printf("coach revision: %zu/%zu pairs changed (%zu invalid replaced, "
              "%zu leakage-skipped)\n",
              result.stats.changed, result.stats.total,
              result.stats.invalid_replaced, result.stats.leakage_skipped);

  // 4. Show three before/after examples with Table II scores.
  size_t shown = 0;
  for (size_t i = 0; i < corpus.dataset.size() && shown < 3; ++i) {
    const InstructionPair& before = corpus.dataset[i];
    const InstructionPair& after = result.revised_dataset[i];
    if (before.output == after.output) continue;
    const double score_before = quality::ScorePair(before).Combined();
    const double score_after = quality::ScorePair(after).Combined();
    if (score_after <= score_before + 10) continue;
    ++shown;
    std::printf("\n--- example %zu (category %s) ---\n", shown,
                CategoryName(before.category).c_str());
    std::printf("BEFORE (%.1f): %s\n  -> %s\n", score_before,
                before.instruction.c_str(), before.output.c_str());
    std::printf("AFTER  (%.1f): %s\n  -> %s\n", score_after,
                after.instruction.c_str(), after.output.c_str());
  }
  return 0;
}
