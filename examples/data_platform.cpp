// The Section IV-A industrial pipeline: collect noisy production user
// cases, parse with rule scripts, optionally pre-revise with CoachLM, and
// measure the human-annotation throughput gain.

#include <cstdio>

#include "coach/pipeline.h"
#include "common/env.h"
#include "expert/pipeline.h"
#include "platform/platform.h"
#include "synth/generator.h"

using namespace coachlm;

int main() {
  // Train a CoachLM first (exactly as the deployed one is).
  synth::CorpusConfig corpus_config;
  corpus_config.size = Scaled(20000, 1500);
  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate();
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = Scaled(4000, 300);
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);
  coach::CoachConfig coach_config;
  const auto coach_result =
      coach::RunCoachPipeline(corpus.dataset, study.revisions, coach_config);

  platform::PlatformConfig platform_config;
  platform_config.batch_size = Scaled(40000, 1000);
  platform::DataPlatform platform(platform_config);

  std::printf("cleaning batch of %zu user cases...\n",
              platform_config.batch_size);
  const auto baseline = platform.RunCleaningBatch(nullptr);
  const auto with_coach =
      platform.RunCleaningBatch(&coach_result.model.value());

  std::printf("baseline  : %.1f pairs/person-day (remaining edit %.0f "
              "chars/pair)\n",
              baseline.pairs_per_person_day, baseline.mean_remaining_edit);
  std::printf("with coach: %.1f pairs/person-day (remaining edit %.0f "
              "chars/pair), inference %.2f samples/s\n",
              with_coach.pairs_per_person_day,
              with_coach.mean_remaining_edit,
              with_coach.coach_samples_per_sec);
  std::printf("net improvement after proficiency deduction: %.1f%%\n",
              platform.NetImprovement(baseline, with_coach) * 100.0);
  return 0;
}
