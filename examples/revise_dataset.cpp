// End-to-end dataset revision: generate an ALPACA52K-like corpus, run the
// expert revision study, train CoachLM, revise the full corpus, and print
// the data-quality movement (the Fig. 2 / Fig. 4 / Table VII story).
//
// COACHLM_SCALE (0 < s <= 1) shrinks the corpus for quick runs.

#include <cstdio>

#include "coach/pipeline.h"
#include "common/env.h"
#include "common/table_writer.h"
#include "expert/pipeline.h"
#include "quality/accuracy_rater.h"
#include "synth/generator.h"
#include "text/edit_distance.h"

using namespace coachlm;

int main() {
  synth::CorpusConfig corpus_config;
  corpus_config.size = Scaled(52000, 2000);
  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate();
  std::printf("corpus: %zu pairs (COACHLM_SCALE=%.3f)\n",
              corpus.dataset.size(), ExperimentScale());

  quality::AccuracyRater rater;
  const auto before = rater.RateDataset(corpus.dataset);
  std::printf("original  : mean rating %.2f, >4.5 share %.1f%%\n",
              before.mean, before.fraction_above_45 * 100);

  expert::RevisionStudyConfig study_config;
  study_config.sample_size = Scaled(6000, 400);
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);
  std::printf("expert study: sampled %zu, excluded %zu, revised %zu "
              "(instruction side %zu), %.0f person-days\n",
              study_config.sample_size, study.filter_stats.TotalExcluded(),
              study.revised_pairs, study.instruction_revised_pairs,
              study.person_days);

  coach::CoachConfig coach_config;
  coach_config.alpha = 0.3;
  const auto result =
      coach::RunCoachPipeline(corpus.dataset, study.revisions, coach_config);

  const auto after = rater.RateDataset(result.revised_dataset);
  std::printf("revised   : mean rating %.2f, >4.5 share %.1f%%\n",
              after.mean, after.fraction_above_45 * 100);

  // Table VII statistics.
  const DatasetStats stats_before = corpus.dataset.ComputeStats();
  const DatasetStats stats_after = result.revised_dataset.ComputeStats();
  double instr_ed = 0, resp_ed = 0;
  size_t instr_changed = 0;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    instr_ed += static_cast<double>(editdist::WordDistance(
        corpus.dataset[i].FullInstruction(),
        result.revised_dataset[i].FullInstruction()));
    resp_ed += static_cast<double>(editdist::WordDistance(
        corpus.dataset[i].output, result.revised_dataset[i].output));
    if (corpus.dataset[i].FullInstruction() !=
        result.revised_dataset[i].FullInstruction()) {
      ++instr_changed;
    }
  }
  const double n = static_cast<double>(corpus.dataset.size());
  TableWriter table({"Dataset", "Instr words", "Instr ED", "Resp words",
                     "Resp ED"});
  table.AddRow({"Original", TableWriter::Num(stats_before.avg_instruction_words),
                "-", TableWriter::Num(stats_before.avg_response_words), "-"});
  table.AddRow({"CoachLM-revised",
                TableWriter::Num(stats_after.avg_instruction_words),
                TableWriter::Num(instr_ed / n),
                TableWriter::Num(stats_after.avg_response_words),
                TableWriter::Num(resp_ed / n)});
  std::printf("\n%s", table.ToAscii().c_str());
  std::printf("instructions changed: %zu (%.1f%%)\n", instr_changed,
              100.0 * static_cast<double>(instr_changed) / n);
  std::printf("post-processing: %zu invalid replaced (%.2f%%), %zu "
              "leakage-skipped (%.2f%%)\n",
              result.stats.invalid_replaced,
              100.0 * static_cast<double>(result.stats.invalid_replaced) / n,
              result.stats.leakage_skipped,
              100.0 * static_cast<double>(result.stats.leakage_skipped) / n);
  return 0;
}
