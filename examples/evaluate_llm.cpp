// Tune Alpaca variants on original / human-revised / CoachLM-revised data
// and judge them against the four instruction-following test sets with the
// PandaLM-style judge (the Table IX story, at example scale).

#include <cstdio>

#include "coach/pipeline.h"
#include "common/env.h"
#include "common/table_writer.h"
#include "expert/pipeline.h"
#include "synth/generator.h"
#include "testsets/testset.h"
#include "tuning/evaluation.h"
#include "tuning/model_zoo.h"

using namespace coachlm;

int main() {
  // Build the three training datasets.
  synth::CorpusConfig corpus_config;
  corpus_config.size = Scaled(52000, 2000);
  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate();

  expert::RevisionStudyConfig study_config;
  study_config.sample_size = Scaled(6000, 400);
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);
  coach::CoachConfig coach_config;
  const auto coach_result =
      coach::RunCoachPipeline(corpus.dataset, study.revisions, coach_config);

  // Tune the baseline zoo.
  tuning::ZooInputs inputs;
  inputs.original = &corpus.dataset;
  inputs.human_merged = &study.merged_dataset;
  inputs.coach_revised = &coach_result.revised_dataset;
  tuning::InstructionTuner tuner;
  auto zoo = tuning::BuildBaselineGroup(inputs, tuner);

  // Judge on every test set.
  const auto test_sets = testsets::AllTestSets();
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  TableWriter table({"Model", "Test set", "WR1", "WR2", "QS"});
  for (const auto& entry : zoo) {
    for (const auto& set : test_sets) {
      const auto eval = tuning::EvaluateModel(entry.model, set, panda);
      table.AddRow({entry.model.spec().name, set.name,
                    TableWriter::Pct(eval.rates.wr1),
                    TableWriter::Pct(eval.rates.wr2),
                    TableWriter::Pct(eval.rates.qs)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
