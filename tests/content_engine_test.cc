#include "synth/content_engine.h"

#include <gtest/gtest.h>

#include "quality/criteria.h"
#include "synth/arith.h"
#include "text/string_util.h"

namespace coachlm {
namespace synth {
namespace {

class ContentEngineCategoryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ContentEngineCategoryTest, BuildsWellFormedCleanPairs) {
  ContentEngine engine;
  const Category category = static_cast<Category>(GetParam());
  Rng rng(100 + GetParam());
  const Topic& topic = Topics()[GetParam() % Topics().size()];
  ResponseRichness richness;
  richness.explanations = 2;
  richness.closing = true;
  const InstructionPair pair =
      engine.BuildCleanPair(GetParam(), category, topic, richness, &rng);
  EXPECT_TRUE(pair.IsWellFormed()) << CategoryName(category);
  EXPECT_EQ(pair.category, category);
  EXPECT_EQ(pair.id, GetParam());
  // Clean pairs must not trip the basic criteria.
  const quality::PairQuality quality = quality::ScorePair(pair);
  EXPECT_FALSE(quality.response.HasBasicFlaw())
      << CategoryName(category) << ": " << pair.output;
  EXPECT_FALSE(quality.instruction.HasBasicFlaw())
      << CategoryName(category) << ": " << pair.FullInstruction();
}

INSTANTIATE_TEST_SUITE_P(AllCategories, ContentEngineCategoryTest,
                         ::testing::Range<size_t>(0, kNumCategories));

TEST(ContentEngineTest, MathPairsAreArithmeticallyConsistent) {
  ContentEngine engine;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const InstructionPair pair = engine.BuildCleanPair(
        1, Category::kMathProblem, Topics()[0], ResponseRichness{}, &rng);
    const auto problem = ParseArithProblem(pair.instruction);
    ASSERT_TRUE(problem.has_value()) << pair.instruction;
    const auto stated = ParseStatedResult(pair.output);
    ASSERT_TRUE(stated.has_value()) << pair.output;
    EXPECT_EQ(*stated, problem->Answer());
  }
}

TEST(ContentEngineTest, RichnessKnobsChangeLength) {
  ContentEngine engine;
  const Topic& topic = Topics()[3];
  Rng rng1(9);
  Rng rng2(9);
  ResponseRichness thin;
  thin.explanations = 0;
  thin.closing = false;
  ResponseRichness rich;
  rich.explanations = 4;
  rich.closing = true;
  const auto thin_pair = engine.BuildCleanPair(1, Category::kGeneralQa,
                                               topic, thin, &rng1);
  const auto rich_pair = engine.BuildCleanPair(1, Category::kGeneralQa,
                                               topic, rich, &rng2);
  EXPECT_GT(strings::CountWords(rich_pair.output),
            strings::CountWords(thin_pair.output) + 20);
}

TEST(ContentEngineTest, RebuildResponseRecoversTopicFromInstruction) {
  ContentEngine engine;
  Rng rng(11);
  InstructionPair pair;
  pair.id = 1;
  pair.category = Category::kGeneralQa;
  pair.instruction = "What is photosynthesis?";
  pair.output = "";  // destroyed
  ResponseRichness rich;
  rich.explanations = 3;
  rich.closing = true;
  const std::string rebuilt = engine.RebuildResponse(pair, rich, &rng);
  EXPECT_TRUE(strings::Contains(rebuilt, "Photosynthesis"));
  EXPECT_GT(strings::CountWords(rebuilt), 30u);
}

TEST(ContentEngineTest, RebuildIsConsistentForCode) {
  ContentEngine engine;
  Rng rng(13);
  InstructionPair pair;
  pair.id = 2;
  pair.category = Category::kCoding;
  pair.instruction =
      "Write a Python function that computes the factorial of a number.";
  const std::string rebuilt =
      engine.RebuildResponse(pair, ResponseRichness{2, false, false}, &rng);
  EXPECT_TRUE(strings::Contains(rebuilt, "def factorial"));
}

TEST(ContentEngineTest, ExplanationsAvoidExistingText) {
  ContentEngine engine;
  const Topic& topic = Topics()[0];
  Rng rng(17);
  const std::string avoid = topic.details[0] + " " + topic.details[1];
  for (int i = 0; i < 10; ++i) {
    const auto sentences = engine.ExplanationSentences(topic, &rng, 2, avoid);
    for (const std::string& s : sentences) {
      EXPECT_EQ(s.find(topic.details[0]), std::string::npos);
      // Marker versions decapitalize; compare on a distinctive suffix.
      EXPECT_EQ(s.find(topic.details[0].substr(5)), std::string::npos);
    }
  }
}

TEST(ContentEngineTest, TopicForFallsBackDeterministically) {
  ContentEngine engine;
  InstructionPair pair;
  pair.id = 12345;
  pair.instruction = "Do the thing.";
  pair.output = "Stuff happened.";
  const Topic& t1 = engine.TopicFor(pair);
  const Topic& t2 = engine.TopicFor(pair);
  EXPECT_EQ(t1.name, t2.name);
}

}  // namespace
}  // namespace synth
}  // namespace coachlm
