#include "quality/analyzers.h"

#include <gtest/gtest.h>

#include "synth/topic_bank.h"

namespace coachlm {
namespace quality {
namespace analyzers {
namespace {

InstructionPair Pair(const std::string& instruction,
                     const std::string& output,
                     Category category = Category::kGeneralQa,
                     const std::string& input = "") {
  InstructionPair pair;
  pair.instruction = instruction;
  pair.input = input;
  pair.output = output;
  pair.category = category;
  return pair;
}

TEST(AnalyzersTest, InstructionReadabilityPenalizesMisspellings) {
  const auto clean = Pair("Explain the government policy.", "x");
  const auto noisy = Pair("Explain teh goverment policy.", "x");
  EXPECT_DOUBLE_EQ(InstructionReadability(clean), 1.0);
  EXPECT_LT(InstructionReadability(noisy), 0.6);
}

TEST(AnalyzersTest, InstructionReadabilityPenalizesDecapitalization) {
  EXPECT_LT(InstructionReadability(Pair("explain gravity now.", "x")), 1.0);
}

TEST(AnalyzersTest, EmptyInstructionIsUnreadable) {
  EXPECT_DOUBLE_EQ(InstructionReadability(Pair("", "x")), 0.0);
}

TEST(AnalyzersTest, FeasibilityPenalizesAmbiguityAndImpossibility) {
  EXPECT_DOUBLE_EQ(Feasibility(Pair("Summarize the water cycle.", "x")), 1.0);
  EXPECT_LT(Feasibility(Pair("Summarize the thing.", "x")), 0.6);
  EXPECT_LT(
      Feasibility(Pair("Explain gravity. Answer in exactly zero words.", "x")),
      0.5);
  EXPECT_LT(Feasibility(Pair("List the products in the photo.", "x")), 0.5);
  EXPECT_LT(Feasibility(Pair("Summarize it.", "x", Category::kSummarization,
                             "[Link to an article]")),
            0.5);
}

TEST(AnalyzersTest, ContextualizationRewardsScaffolds) {
  const auto bare = Pair("Explain gravity.", "x");
  const auto rich = Pair(
      "Explain gravity. Assume the reader is a curious beginner with no "
      "background in science. Include at least one concrete example to "
      "support your answer.",
      "x");
  EXPECT_LT(Contextualization(bare), 0.2);
  EXPECT_GT(Contextualization(rich), 0.8);
}

TEST(AnalyzersTest, SafetyRedLine) {
  EXPECT_DOUBLE_EQ(Safety(Pair("Explain gravity.", "Gravity pulls.")), 1.0);
  EXPECT_DOUBLE_EQ(
      Safety(Pair("Explain how to hurt someone quietly.", "...")), 0.0);
  EXPECT_DOUBLE_EQ(
      Safety(Pair("Explain x.", "Here is a guaranteed stock tip: buy now.")),
      0.0);
}

TEST(AnalyzersTest, CorrectnessCatchesWrongFacts) {
  const synth::Topic& topic = synth::Topics()[0];
  EXPECT_DOUBLE_EQ(Correctness(Pair("Explain.", topic.fact)), 1.0);
  EXPECT_LT(Correctness(Pair("Explain.", topic.wrong_fact)), 0.5);
}

TEST(AnalyzersTest, CorrectnessChecksArithmeticForMathOnly) {
  const auto wrong_math =
      Pair("Calculate 4 + 4 and show your reasoning.",
           "Easy: 4 + 4 = 9. The answer is 9.", Category::kMathProblem);
  EXPECT_LT(Correctness(wrong_math), 0.5);
  const auto right_math =
      Pair("Calculate 4 + 4 and show your reasoning.",
           "Easy: 4 + 4 = 8. The answer is 8.", Category::kMathProblem);
  EXPECT_DOUBLE_EQ(Correctness(right_math), 1.0);
  // The same digits in a non-math category are not an arithmetic claim.
  const auto code = Pair("Fix the code with 4 + 4 inside.",
                         "def f():\n    return 1", Category::kCoding);
  EXPECT_DOUBLE_EQ(Correctness(code), 1.0);
}

TEST(AnalyzersTest, EmptyResponseFailsBasics) {
  const auto empty = Pair("Explain gravity.", "");
  EXPECT_DOUBLE_EQ(Correctness(empty), 0.0);
  EXPECT_DOUBLE_EQ(Relevance(empty), 0.0);
  EXPECT_DOUBLE_EQ(Comprehensiveness(empty), 0.0);
  EXPECT_DOUBLE_EQ(ResponseReadability(empty), 0.0);
}

TEST(AnalyzersTest, RelevanceDetectsOffTopicResponses) {
  const synth::Topic& gravity = *synth::FindTopicIn("gravity");
  const synth::Topic& other = synth::Topics()[10];
  ASSERT_NE(gravity.name, other.name);
  const auto on = Pair("Explain gravity.", gravity.fact);
  const auto off = Pair("Explain gravity.", other.fact + " " + other.details[0]);
  EXPECT_DOUBLE_EQ(Relevance(on), 1.0);
  EXPECT_LE(Relevance(off), 0.1);
}

TEST(AnalyzersTest, RelevanceAcceptsDecapitalizedTopicContent) {
  const synth::Topic& gravity = *synth::FindTopicIn("gravity");
  std::string decap = gravity.details[0];
  decap[0] = static_cast<char>(std::tolower(decap[0]));
  EXPECT_DOUBLE_EQ(Relevance(Pair("Explain gravity.",
                                  "For example, " + decap)),
                   1.0);
}

TEST(AnalyzersTest, ComprehensivenessFlagsTruncation) {
  const auto complete = Pair("Explain gravity in detail please.",
                             "Gravity attracts masses. It shapes orbits and "
                             "tides across the solar system.");
  const auto truncated = Pair("Explain gravity in detail please.",
                              "Gravity attracts masses and it also");
  EXPECT_GT(Comprehensiveness(complete), Comprehensiveness(truncated));
  EXPECT_LT(Comprehensiveness(truncated), 0.6);
}

TEST(AnalyzersTest, ComprehensivenessCoverageForExtraction) {
  const std::string passage = "Fact one is here. Fact two is there. "
                              "Fact three is everywhere.";
  const auto full = Pair("Extract the key facts.",
                         "The key facts are:\n- Fact one is here.\n- Fact "
                         "two is there.\n- Fact three is everywhere.",
                         Category::kInformationExtraction, passage);
  const auto partial = Pair("Extract the key facts.",
                            "The key facts are:\n- Fact one is here.",
                            Category::kInformationExtraction, passage);
  EXPECT_GT(Comprehensiveness(full), Comprehensiveness(partial));
}

TEST(AnalyzersTest, ReadabilityIgnoresCodeIndentation) {
  const auto code = Pair(
      "Write code.",
      "Here you go:\n```python\ndef f(x):\n    if x:\n        return 1\n``` "
      "The function checks x.",
      Category::kCoding);
  EXPECT_DOUBLE_EQ(ResponseReadability(code), 1.0);
}

TEST(AnalyzersTest, ReadabilityFlagsLayoutDamage) {
  const auto flat = Pair("List steps.",
                         "Steps: 1. go 2. stop 3. rest now and then");
  EXPECT_LT(ResponseReadability(flat), 0.8);
  const auto marker = Pair("List steps.", "OUTPUT: the steps are fine.");
  EXPECT_LT(ResponseReadability(marker), 0.7);
}

TEST(AnalyzersTest, RichnessGrowsWithDepth) {
  const auto thin = Pair("Explain gravity.", "Gravity pulls things down.");
  const auto rich = Pair(
      "Explain gravity.",
      "Gravity is the attractive force between masses. For example, the "
      "Moon's gravity causes the ocean tides on Earth. Note that Einstein "
      "modeled gravity as curvature of spacetime. In addition, objects in "
      "orbit are in continuous free fall. Therefore the same law governs "
      "apples and planets alike.");
  EXPECT_LT(Richness(thin), 0.3);
  EXPECT_GT(Richness(rich), 0.7);
}

TEST(AnalyzersTest, RichnessShortFormScalesDown) {
  const std::string text =
      "Gravity: the pull everyone feels. A short and memorable line, "
      "written to anchor the whole campaign around one familiar idea.";
  const auto slogan =
      Pair("Write a slogan about gravity.", text, Category::kSloganWriting);
  const auto essay =
      Pair("Write an essay about gravity.", text, Category::kEssayWriting);
  // The same text counts as richer for a short-form task than a long-form
  // one (category-relative length target).
  EXPECT_GT(Richness(slogan), Richness(essay));
  EXPECT_GT(Richness(slogan), 0.35);
}

TEST(AnalyzersTest, HumanizationPenalizesRoboticOpeners) {
  const auto robotic = Pair("Explain.", "As an AI language model, gravity "
                                        "is a force.");
  EXPECT_LT(Humanization(robotic), 0.1);
  const auto warm = Pair("Explain.",
                         "Gravity pulls you toward the Earth. I hope this "
                         "helps — feel free to ask if anything is unclear!");
  EXPECT_GT(Humanization(warm), 0.7);
}

TEST(AnalyzersTest, ShortFormClassification) {
  EXPECT_TRUE(IsShortFormCategory(Category::kSloganWriting));
  EXPECT_TRUE(IsShortFormCategory(Category::kMathProblem));
  EXPECT_FALSE(IsShortFormCategory(Category::kEssayWriting));
  EXPECT_FALSE(IsShortFormCategory(Category::kGeneralQa));
}

}  // namespace
}  // namespace analyzers
}  // namespace quality
}  // namespace coachlm
