#include "data/shard.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/checkpoint.h"
#include "data/corpus_io.h"
#include "data/dataset.h"

namespace coachlm {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

InstructionDataset MakeDataset(size_t n) {
  InstructionDataset ds;
  for (size_t i = 0; i < n; ++i) {
    InstructionPair pair;
    pair.id = 500 + i;
    pair.instruction = "Classify item " + std::to_string(i) + ".";
    pair.input = i % 2 == 0 ? "" : "sample " + std::to_string(i);
    pair.output = "Item " + std::to_string(i) + " is class " +
                  std::to_string(i % 3) + ".";
    pair.category = static_cast<Category>(i % kNumCategories);
    ds.Add(std::move(pair));
  }
  return ds;
}

void RemoveShardedCorpus(const std::string& manifest_path) {
  auto manifest = ShardManifest::Load(manifest_path);
  if (manifest.ok()) {
    const std::string dir = DirnameWithSlash(manifest_path);
    for (const ShardEntry& entry : manifest->shards) {
      std::remove((dir + entry.file).c_str());
    }
  }
  std::remove(manifest_path.c_str());
}

TEST(ShardManifestTest, JsonRoundTrip) {
  ShardManifest manifest;
  manifest.format = CorpusFormat::kBinary;
  manifest.shards.push_back({"a.shard-00000-of-00002.clmb", 10, 321});
  manifest.shards.push_back({"a.shard-00001-of-00002.clmb", 9, 300});
  const json::Value doc = manifest.ToJson();
  auto parsed = ShardManifest::FromJson(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->format, CorpusFormat::kBinary);
  ASSERT_EQ(parsed->shards.size(), 2u);
  EXPECT_EQ(parsed->shards[0].file, "a.shard-00000-of-00002.clmb");
  EXPECT_EQ(parsed->shards[1].records, 9u);
  EXPECT_EQ(parsed->shards[1].bytes, 300u);
  EXPECT_EQ(parsed->TotalRecords(), 19u);

  // The manifest key must be the document's first key so the file is
  // sniffable from its leading bytes.
  const std::string text = doc.DumpPretty();
  const size_t brace = text.find('{');
  ASSERT_NE(brace, std::string::npos);
  EXPECT_TRUE(LooksLikeShardManifest(text));
}

TEST(ShardManifestTest, RejectsAutoFormatAndBadVersion) {
  ShardManifest manifest;
  manifest.shards.push_back({"x.clmb", 1, 10});
  json::Value doc = manifest.ToJson();
  doc.AsObject()[kShardManifestKey] = json::Value(static_cast<int64_t>(99));
  EXPECT_FALSE(ShardManifest::FromJson(doc).ok());

  json::Value doc2 = manifest.ToJson();
  doc2.AsObject()["format"] = json::Value(std::string("auto"));
  EXPECT_FALSE(ShardManifest::FromJson(doc2).ok());
}

TEST(ShardLayoutTest, LooksLikeShardManifestNeedsLeadingKey) {
  EXPECT_TRUE(LooksLikeShardManifest("{\"coachlm_manifest\": 1}"));
  EXPECT_TRUE(LooksLikeShardManifest("  {\n  \"coachlm_manifest\": 1"));
  EXPECT_FALSE(LooksLikeShardManifest("{\"format\": \"binary\"}"));
  EXPECT_FALSE(LooksLikeShardManifest("[{\"id\": 1}]"));
  EXPECT_FALSE(LooksLikeShardManifest(""));
}

TEST(ShardLayoutTest, ShardFileNameStripsManifestSuffix) {
  EXPECT_EQ(ShardFileName("data/corpus.manifest.json", CorpusFormat::kBinary,
                          2, 8),
            "data/corpus.shard-00002-of-00008.clmb");
  EXPECT_EQ(ShardFileName("corpus.json", CorpusFormat::kJsonl, 0, 2),
            "corpus.shard-00000-of-00002.jsonl");
}

TEST(ShardLayoutTest, SplitShardCountsIsContiguousAndFair) {
  const std::vector<size_t> counts = SplitShardCounts(10, 4);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
  size_t total = 0;
  for (const size_t c : counts) total += c;
  EXPECT_EQ(total, 10u);

  // More shards than records: trailing shards are legitimately empty.
  const std::vector<size_t> sparse = SplitShardCounts(2, 4);
  ASSERT_EQ(sparse.size(), 4u);
  EXPECT_EQ(sparse[0], 1u);
  EXPECT_EQ(sparse[1], 1u);
  EXPECT_EQ(sparse[2], 0u);
  EXPECT_EQ(sparse[3], 0u);
}

TEST(ShardStageNameTest, EncodesIndexAndCount) {
  EXPECT_EQ(ShardStageName("revise", 2, 8), "revise.shard-00002-of-00008");
  EXPECT_EQ(ShardStageName("revise", 0, 1), "revise.shard-00000-of-00001");
}

TEST(ShardedIoTest, WriteThenReadPreservesOrder) {
  const InstructionDataset ds = MakeDataset(17);
  const std::string manifest_path = TempPath("coachlm_shard.manifest.json");
  {
    ShardedRecordWriter writer(manifest_path, CorpusFormat::kBinary, 4);
    ASSERT_TRUE(WriteAllRecords(&writer, ds).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto manifest = ShardManifest::Load(manifest_path);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->shards.size(), 4u);
  EXPECT_EQ(manifest->TotalRecords(), ds.size());

  auto reader = ShardedRecordReader::Open(manifest_path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->SizeHint(), ds.size());
  auto loaded = ReadAllRecords(reader->get());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*loaded)[i], ds[i]);
  RemoveShardedCorpus(manifest_path);
}

TEST(ShardedIoTest, PerShardReadersConcatenateToWholeCorpus) {
  const InstructionDataset ds = MakeDataset(10);
  const std::string manifest_path =
      TempPath("coachlm_shard_units.manifest.json");
  {
    ShardedRecordWriter writer(manifest_path, CorpusFormat::kBinary, 3);
    ASSERT_TRUE(WriteAllRecords(&writer, ds).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto manifest = ShardManifest::Load(manifest_path);
  ASSERT_TRUE(manifest.ok());
  InstructionDataset combined;
  for (size_t k = 0; k < manifest->shards.size(); ++k) {
    auto shard = OpenShard(*manifest, manifest_path, k);
    ASSERT_TRUE(shard.ok());
    auto records = ReadAllRecords(shard->get());
    ASSERT_TRUE(records.ok());
    EXPECT_EQ(records->size(), manifest->shards[k].records);
    for (const InstructionPair& pair : records->pairs()) combined.Add(pair);
  }
  ASSERT_EQ(combined.size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ(combined[i], ds[i]);

  EXPECT_FALSE(OpenShard(*manifest, manifest_path, 99).ok());
  RemoveShardedCorpus(manifest_path);
}

TEST(ShardedIoTest, CorpusIoSniffsManifestAndLoads) {
  const InstructionDataset ds = MakeDataset(6);
  const std::string manifest_path =
      TempPath("coachlm_shard_sniff.manifest.json");
  CorpusWriteOptions options;
  options.shards = 2;
  ASSERT_TRUE(SaveCorpus(manifest_path, ds, options).ok());

  auto sniff = SniffCorpus(manifest_path);
  ASSERT_TRUE(sniff.ok());
  EXPECT_TRUE(sniff->sharded);

  auto loaded = LoadCorpus(manifest_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*loaded)[i], ds[i]);
  RemoveShardedCorpus(manifest_path);
}

TEST(MergeDatasetStatsTest, MatchesWholeCorpusStats) {
  const InstructionDataset ds = MakeDataset(25);
  const DatasetStats whole = ds.ComputeStats();

  // Stats computed per contiguous slice, merged, must equal the whole.
  const std::vector<size_t> counts = SplitShardCounts(ds.size(), 4);
  std::vector<DatasetStats> parts;
  size_t offset = 0;
  for (const size_t count : counts) {
    InstructionDataset slice;
    for (size_t i = 0; i < count; ++i) slice.Add(ds[offset + i]);
    offset += count;
    parts.push_back(slice.ComputeStats());
  }
  const DatasetStats merged = MergeDatasetStats(parts);
  EXPECT_EQ(merged.size, whole.size);
  EXPECT_NEAR(merged.avg_instruction_words, whole.avg_instruction_words, 1e-9);
  EXPECT_NEAR(merged.avg_response_words, whole.avg_response_words, 1e-9);
  EXPECT_NEAR(merged.avg_instruction_chars, whole.avg_instruction_chars, 1e-9);
  EXPECT_NEAR(merged.avg_response_chars, whole.avg_response_chars, 1e-9);
  EXPECT_EQ(merged.category_counts, whole.category_counts);

  // Deterministic under reordering: merge weights by size, so permuting
  // the parts cannot change the result.
  std::vector<DatasetStats> reversed(parts.rbegin(), parts.rend());
  const DatasetStats remerged = MergeDatasetStats(reversed);
  EXPECT_EQ(remerged.size, merged.size);
  EXPECT_NEAR(remerged.avg_instruction_words, merged.avg_instruction_words,
              1e-9);
  EXPECT_NEAR(remerged.avg_response_words, merged.avg_response_words, 1e-9);

  EXPECT_EQ(MergeDatasetStats({}).size, 0u);
}

}  // namespace
}  // namespace coachlm
