#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace coachlm {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 3; ++round) {
    pool.ParallelFor(1000, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 3L * (999L * 1000L / 2));
}

TEST(ThreadPoolTest, DefaultSizeUsesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace coachlm
