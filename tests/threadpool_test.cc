#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace coachlm {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 3; ++round) {
    pool.ParallelFor(1000, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 3L * (999L * 1000L / 2));
}

TEST(ThreadPoolTest, DefaultSizeUsesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForExplicitGrainCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanRangeStillCompletes) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count.fetch_add(1); }, /*grain=*/1000);
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotInterfere) {
  // Two threads issuing ParallelFor on the same pool: each call has its
  // own completion latch, so neither may return before its own indices
  // are all done.
  ThreadPool pool(4);
  std::atomic<long> sum_a{0};
  std::atomic<long> sum_b{0};
  std::thread other([&] {
    pool.ParallelFor(2000, [&](size_t i) {
      sum_b.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum_b.load(), 1999L * 2000L / 2);
  });
  pool.ParallelFor(2000, [&](size_t i) {
    sum_a.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum_a.load(), 1999L * 2000L / 2);
  other.join();
}

}  // namespace
}  // namespace coachlm
