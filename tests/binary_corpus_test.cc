#include "data/binary_corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/record_stream.h"
#include "json/jsonl.h"

namespace coachlm {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

InstructionDataset MakeDataset(size_t n) {
  InstructionDataset ds;
  for (size_t i = 0; i < n; ++i) {
    InstructionPair pair;
    pair.id = 1000 + i;
    pair.instruction = "Explain step " + std::to_string(i) + " of the plan.";
    pair.input = i % 4 == 0 ? "" : "context " + std::to_string(i % 5);
    pair.output = "Step " + std::to_string(i) + " proceeds carefully.";
    pair.category = static_cast<Category>(i % kNumCategories);
    ds.Add(std::move(pair));
  }
  return ds;
}

Status WriteBinary(const std::string& path, const InstructionDataset& ds,
                   size_t block_records = 4096) {
  BinaryCorpusWriter writer(path, block_records);
  COACHLM_RETURN_NOT_OK(WriteAllRecords(&writer, ds));
  return writer.Close();
}

std::string Slurp(const std::string& path) {
  auto text = json::ReadFile(path);
  EXPECT_TRUE(text.ok());
  return text.ok() ? *text : std::string();
}

void Spill(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
}

TEST(BinaryCorpusTest, MultiBlockRoundTrip) {
  const InstructionDataset ds = MakeDataset(23);
  const std::string path = TempPath("coachlm_bin_roundtrip.clmb");
  // Tiny blocks force the multi-block code paths (23 records, 5 blocks).
  ASSERT_TRUE(WriteBinary(path, ds, /*block_records=*/5).ok());

  auto reader = BinaryCorpusReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->SizeHint(), ds.size());
  EXPECT_EQ((*reader)->info().blocks, 5u);
  EXPECT_FALSE((*reader)->info().truncated());
  auto loaded = ReadAllRecords(reader->get());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*loaded)[i], ds[i]);
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, EmptyDatasetRoundTrip) {
  const std::string path = TempPath("coachlm_bin_empty.clmb");
  ASSERT_TRUE(WriteBinary(path, InstructionDataset()).ok());
  auto reader = BinaryCorpusReader::Open(path);
  ASSERT_TRUE(reader.ok());
  InstructionPair pair;
  auto more = (*reader)->Next(&pair);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, StringPoolDeduplicatesRepeatedFields) {
  InstructionDataset ds;
  for (size_t i = 0; i < 64; ++i) {
    InstructionPair pair;
    pair.id = i + 1;
    pair.instruction = "Summarize the attached report.";  // identical
    pair.input = "report body";                           // identical
    pair.output = "Summary " + std::to_string(i);         // distinct
    ds.Add(std::move(pair));
  }
  const std::string path = TempPath("coachlm_bin_dedup.clmb");
  BinaryCorpusWriter writer(path);
  ASSERT_TRUE(WriteAllRecords(&writer, ds).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_GT(writer.pool_dedup_hits(), 0u);

  auto loaded = BinaryCorpusReader::Open(path);
  ASSERT_TRUE(loaded.ok());
  auto records = ReadAllRecords(loaded->get());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*records)[i], ds[i]);
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, ScanViewsMatchNext) {
  const InstructionDataset ds = MakeDataset(11);
  const std::string path = TempPath("coachlm_bin_scan.clmb");
  ASSERT_TRUE(WriteBinary(path, ds, /*block_records=*/4).ok());
  auto reader = BinaryCorpusReader::Open(path);
  ASSERT_TRUE(reader.ok());
  size_t i = 0;
  const Status scanned = (*reader)->Scan([&](const RecordView& view) {
    EXPECT_EQ(view.id, ds[i].id);
    EXPECT_EQ(view.category, static_cast<uint8_t>(ds[i].category));
    EXPECT_EQ(view.instruction, ds[i].instruction);
    EXPECT_EQ(view.input, ds[i].input);
    EXPECT_EQ(view.output, ds[i].output);
    ++i;
  });
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(i, ds.size());
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, CorruptPayloadFailsCrc) {
  const InstructionDataset ds = MakeDataset(8);
  const std::string path = TempPath("coachlm_bin_crc.clmb");
  ASSERT_TRUE(WriteBinary(path, ds).ok());
  std::string bytes = Slurp(path);
  // Flip one payload byte well past the file+block headers.
  const size_t victim =
      kBinaryCorpusHeaderBytes + kBinaryBlockHeaderBytes + 40;
  ASSERT_LT(victim, bytes.size());
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x5A);
  Spill(path, bytes);

  const auto reader = BinaryCorpusReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos);

  // Corruption is not a torn tail: recovery mode must refuse it too.
  RecordReadOptions recover;
  recover.recover_torn_tail = true;
  EXPECT_FALSE(BinaryCorpusReader::Open(path, recover).ok());
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, TornFinalBlockStrictErrorCarriesByteOffset) {
  const InstructionDataset ds = MakeDataset(20);
  const std::string path = TempPath("coachlm_bin_torn.clmb");
  ASSERT_TRUE(WriteBinary(path, ds, /*block_records=*/5).ok());
  std::string bytes = Slurp(path);
  // Chop into the final block's payload, simulating a crash mid-append.
  bytes.resize(bytes.size() - 30);
  Spill(path, bytes);

  const auto strict = BinaryCorpusReader::Open(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kParseError);
  EXPECT_NE(strict.status().message().find("byte offset"), std::string::npos);
  EXPECT_NE(strict.status().message().find("torn final block"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, TornFinalBlockRecoversIntactPrefix) {
  const InstructionDataset ds = MakeDataset(20);
  const std::string path = TempPath("coachlm_bin_recover.clmb");
  ASSERT_TRUE(WriteBinary(path, ds, /*block_records=*/5).ok());
  std::string bytes = Slurp(path);
  bytes.resize(bytes.size() - 30);
  Spill(path, bytes);

  RecordReadOptions recover;
  recover.recover_torn_tail = true;
  auto reader = BinaryCorpusReader::Open(path, recover);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->info().truncated());
  auto loaded = ReadAllRecords(reader->get());
  ASSERT_TRUE(loaded.ok());
  // Three intact 5-record blocks survive; the torn fourth is discarded.
  ASSERT_EQ(loaded->size(), 15u);
  for (size_t i = 0; i < loaded->size(); ++i) EXPECT_EQ((*loaded)[i], ds[i]);
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, RejectsWrongMagicAndVersion) {
  const std::string path = TempPath("coachlm_bin_magic.clmb");
  Spill(path, "not a binary corpus at all, just text\n");
  EXPECT_FALSE(BinaryCorpusReader::Open(path).ok());

  const InstructionDataset ds = MakeDataset(2);
  ASSERT_TRUE(WriteBinary(path, ds).ok());
  std::string bytes = Slurp(path);
  bytes[8] = static_cast<char>(kBinaryCorpusVersion + 1);  // version field
  Spill(path, bytes);
  const auto reader = BinaryCorpusReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, HasBinaryCorpusMagicDetectsHeader) {
  const InstructionDataset ds = MakeDataset(1);
  const std::string path = TempPath("coachlm_bin_sniff.clmb");
  ASSERT_TRUE(WriteBinary(path, ds).ok());
  const std::string bytes = Slurp(path);
  EXPECT_TRUE(HasBinaryCorpusMagic(bytes));
  EXPECT_FALSE(HasBinaryCorpusMagic("CLMCORP"));   // too short
  EXPECT_FALSE(HasBinaryCorpusMagic("[{\"id\":1}]"));
  std::remove(path.c_str());
}

TEST(BinaryCorpusTest, InspectReportsBlocksAndRecords) {
  const InstructionDataset ds = MakeDataset(13);
  const std::string path = TempPath("coachlm_bin_inspect.clmb");
  ASSERT_TRUE(WriteBinary(path, ds, /*block_records=*/4).ok());
  const auto info = InspectBinaryCorpus(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->records, 13u);
  EXPECT_EQ(info->blocks, 4u);
  EXPECT_FALSE(info->truncated());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace coachlm
