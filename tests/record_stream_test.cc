#include "data/record_stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/corpus_io.h"
#include "json/jsonl.h"

namespace coachlm {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

InstructionDataset MakeDataset(size_t n) {
  InstructionDataset ds;
  for (size_t i = 0; i < n; ++i) {
    InstructionPair pair;
    pair.id = 1000 + i;
    pair.instruction = "Describe concept " + std::to_string(i) + ".";
    pair.input = i % 3 == 0 ? "" : "payload " + std::to_string(i);
    pair.output = "Concept " + std::to_string(i) + " works as follows.";
    pair.category = static_cast<Category>(i % kNumCategories);
    ds.Add(std::move(pair));
  }
  return ds;
}

std::string Slurp(const std::string& path) {
  auto text = json::ReadFile(path);
  EXPECT_TRUE(text.ok());
  return text.ok() ? *text : std::string();
}

TEST(CorpusFormatTest, NamesRoundTrip) {
  for (const CorpusFormat format :
       {CorpusFormat::kAuto, CorpusFormat::kJson, CorpusFormat::kJsonl,
        CorpusFormat::kBinary}) {
    auto parsed = ParseCorpusFormat(CorpusFormatName(format));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, format);
  }
}

TEST(CorpusFormatTest, UnknownFormatIsInvalidArgument) {
  const auto parsed = ParseCorpusFormat("banana");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordStreamTest, DatasetAdaptersRoundTrip) {
  const InstructionDataset ds = MakeDataset(9);
  DatasetRecordReader reader(&ds);
  EXPECT_EQ(reader.SizeHint(), 9u);
  InstructionDataset sink;
  DatasetRecordWriter writer(&sink);
  InstructionPair pair;
  while (true) {
    auto more = reader.Next(&pair);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_TRUE(writer.Write(pair).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  ASSERT_EQ(sink.size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ(sink[i], ds[i]);
}

TEST(RecordStreamTest, JsonArrayWriterMatchesLegacySaveJsonBytes) {
  const InstructionDataset ds = MakeDataset(5);
  const std::string legacy = TempPath("coachlm_rs_legacy.json");
  const std::string streamed = TempPath("coachlm_rs_streamed.json");
  ASSERT_TRUE(ds.SaveJson(legacy).ok());
  JsonArrayRecordWriter writer(streamed);
  ASSERT_TRUE(WriteAllRecords(&writer, ds).ok());
  ASSERT_TRUE(writer.Close().ok());
  // Byte identity is the refactor's contract: every golden corpus written
  // before the stream interface stays valid after it.
  EXPECT_EQ(Slurp(legacy), Slurp(streamed));
  std::remove(legacy.c_str());
  std::remove(streamed.c_str());
}

TEST(RecordStreamTest, JsonlRoundTrip) {
  const InstructionDataset ds = MakeDataset(7);
  const std::string path = TempPath("coachlm_rs_roundtrip.jsonl");
  JsonlRecordWriter writer(path);
  ASSERT_TRUE(WriteAllRecords(&writer, ds).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto reader = JsonlRecordReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto loaded = ReadAllRecords(reader->get());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*loaded)[i], ds[i]);
  std::remove(path.c_str());
}

TEST(RecordStreamTest, WriteAfterCloseIsFailedPrecondition) {
  const std::string path = TempPath("coachlm_rs_closed.jsonl");
  JsonlRecordWriter writer(path);
  ASSERT_TRUE(writer.Close().ok());
  ASSERT_TRUE(writer.Close().ok());  // Idempotent.
  const Status status = writer.Write(InstructionPair());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(RecordStreamTest, JsonlTornTailStrictVsRecoverable) {
  const InstructionDataset ds = MakeDataset(3);
  const std::string path = TempPath("coachlm_rs_torn.jsonl");
  {
    JsonlRecordWriter writer(path);
    ASSERT_TRUE(WriteAllRecords(&writer, ds).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Tear the final record: drop the trailing newline plus a few bytes.
  std::string text = Slurp(path);
  text.resize(text.size() - 10);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << text;

  EXPECT_FALSE(JsonlRecordReader::Open(path).ok());
  RecordReadOptions recover;
  recover.recover_torn_tail = true;
  auto reader = JsonlRecordReader::Open(path, recover);
  ASSERT_TRUE(reader.ok());
  auto loaded = ReadAllRecords(reader->get());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, SniffsJsonArrayAndJsonl) {
  const InstructionDataset ds = MakeDataset(4);
  const std::string json_path = TempPath("coachlm_sniff.json");
  const std::string jsonl_path = TempPath("coachlm_sniff.jsonl");
  ASSERT_TRUE(SaveCorpus(json_path, ds).ok());
  CorpusWriteOptions jsonl_options;
  jsonl_options.format = CorpusFormat::kJsonl;
  ASSERT_TRUE(SaveCorpus(jsonl_path, ds, jsonl_options).ok());

  auto sniff_json = SniffCorpus(json_path);
  ASSERT_TRUE(sniff_json.ok());
  EXPECT_EQ(sniff_json->format, CorpusFormat::kJson);
  EXPECT_FALSE(sniff_json->sharded);

  auto sniff_jsonl = SniffCorpus(jsonl_path);
  ASSERT_TRUE(sniff_jsonl.ok());
  EXPECT_EQ(sniff_jsonl->format, CorpusFormat::kJsonl);

  for (const std::string& path : {json_path, jsonl_path}) {
    auto loaded = LoadCorpus(path);
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->size(), ds.size());
    for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*loaded)[i], ds[i]);
    std::remove(path.c_str());
  }
}

TEST(CorpusIoTest, WriterFormatResolvesFromExtension) {
  EXPECT_EQ(ResolveWriterFormat("x.jsonl", CorpusFormat::kAuto, false),
            CorpusFormat::kJsonl);
  EXPECT_EQ(ResolveWriterFormat("x.clmb", CorpusFormat::kAuto, false),
            CorpusFormat::kBinary);
  EXPECT_EQ(ResolveWriterFormat("x.bin", CorpusFormat::kAuto, false),
            CorpusFormat::kBinary);
  EXPECT_EQ(ResolveWriterFormat("x.json", CorpusFormat::kAuto, false),
            CorpusFormat::kJson);
  EXPECT_EQ(ResolveWriterFormat("x", CorpusFormat::kAuto, true),
            CorpusFormat::kBinary);
  EXPECT_EQ(ResolveWriterFormat("x.jsonl", CorpusFormat::kJson, false),
            CorpusFormat::kJson);
}

TEST(CorpusIoTest, ZeroShardsIsInvalidArgument) {
  CorpusWriteOptions options;
  options.shards = 0;
  const auto writer = OpenCorpusWriter(TempPath("coachlm_zero.json"), options);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorpusIoTest, SaveCorpusPreservesLegacyJsonBytes) {
  const InstructionDataset ds = MakeDataset(6);
  const std::string legacy = TempPath("coachlm_io_legacy.json");
  const std::string routed = TempPath("coachlm_io_routed.json");
  ASSERT_TRUE(ds.SaveJson(legacy).ok());
  ASSERT_TRUE(SaveCorpus(routed, ds).ok());
  EXPECT_EQ(Slurp(legacy), Slurp(routed));
  std::remove(legacy.c_str());
  std::remove(routed.c_str());
}

}  // namespace
}  // namespace coachlm
