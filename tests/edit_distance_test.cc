#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace editdist {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(CharDistance("", ""), 0u);
  EXPECT_EQ(CharDistance("abc", ""), 3u);
  EXPECT_EQ(CharDistance("", "abc"), 3u);
  EXPECT_EQ(CharDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(CharDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(CharDistance("same", "same"), 0u);
}

TEST(EditDistanceTest, WordLevel) {
  EXPECT_EQ(WordDistance("the cat sat", "the cat sat"), 0u);
  EXPECT_EQ(WordDistance("the cat sat", "the dog sat"), 1u);
  // Punctuation counts as its own token.
  EXPECT_EQ(WordDistance("hello world", "hello, world"), 1u);
}

TEST(EditDistanceTest, NormalizedBounds) {
  EXPECT_DOUBLE_EQ(NormalizedCharDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedCharDistance("abc", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedCharDistance("ab", "ab"), 0.0);
  const double d = NormalizedCharDistance("abcd", "abXd");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(EditDistanceTest, BoundedAgreesWithinBound) {
  Rng rng(11);
  const std::string alphabet = "abcde";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    const size_t la = rng.NextBelow(15);
    const size_t lb = rng.NextBelow(15);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.NextBelow(5)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.NextBelow(5)];
    const size_t exact = CharDistance(a, b);
    for (size_t bound : {0u, 1u, 2u, 5u, 20u}) {
      const size_t bounded = CharDistanceBounded(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(bounded, bound);
      }
    }
  }
}

// Property suite: metric axioms on random strings.
class EditDistancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EditDistancePropertyTest, MetricAxioms) {
  Rng rng(GetParam());
  auto random_string = [&rng]() {
    std::string s;
    const size_t len = rng.NextBelow(20);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextBelow(4));
    }
    return s;
  };
  const std::string a = random_string();
  const std::string b = random_string();
  const std::string c = random_string();
  const size_t dab = CharDistance(a, b);
  const size_t dba = CharDistance(b, a);
  const size_t dac = CharDistance(a, c);
  const size_t dcb = CharDistance(c, b);
  // Identity of indiscernibles.
  EXPECT_EQ(CharDistance(a, a), 0u);
  if (dab == 0) {
    EXPECT_EQ(a, b);
  }
  // Symmetry.
  EXPECT_EQ(dab, dba);
  // Triangle inequality.
  EXPECT_LE(dab, dac + dcb);
  // Length bounds.
  const size_t len_diff =
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  EXPECT_GE(dab, len_diff);
  EXPECT_LE(dab, std::max(a.size(), b.size()));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EditDistancePropertyTest,
                         ::testing::Range<uint64_t>(1, 60));

}  // namespace
}  // namespace editdist
}  // namespace coachlm
