#include "text/match_automaton.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace coachlm {
namespace automaton {
namespace {

/// Asserts Scan agrees with std::string::find for every pattern.
void ExpectFindParity(const MatchAutomaton& machine,
                      const std::vector<std::string>& patterns,
                      const std::string& text) {
  std::vector<size_t> first_begin;
  machine.Scan(text, &first_begin);
  ASSERT_EQ(first_begin.size(), patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].empty()) {
      // Empty patterns never match by contract (find would say 0).
      EXPECT_EQ(first_begin[i], kNotFound) << "pattern " << i;
      continue;
    }
    const size_t expected = text.find(patterns[i]);
    const size_t actual = first_begin[i];
    if (expected == std::string::npos) {
      EXPECT_EQ(actual, kNotFound) << "pattern '" << patterns[i] << "'";
    } else {
      EXPECT_EQ(actual, expected) << "pattern '" << patterns[i] << "'";
    }
  }
}

TEST(ClassFingerprintTest, ClassesPartitionBytes) {
  EXPECT_EQ(ClassOf('a'), 0);
  EXPECT_EQ(ClassOf('z'), 25);
  EXPECT_EQ(ClassOf('A'), 26);
  EXPECT_EQ(ClassOf('Z'), 51);
  EXPECT_EQ(ClassOf('0'), 52);
  EXPECT_EQ(ClassOf('9'), 61);
  // All whitespace folds into one class: CollapseWhitespace rewrites
  // whitespace kinds into each other, so distinguishing them would make
  // the prefilter unsound after a mutation.
  EXPECT_EQ(ClassOf(' '), 62);
  EXPECT_EQ(ClassOf('\t'), 62);
  EXPECT_EQ(ClassOf('\n'), 62);
  EXPECT_EQ(ClassOf('\r'), 62);
  EXPECT_EQ(ClassOf('.'), 63);
  EXPECT_EQ(ClassOf(static_cast<unsigned char>(0xC3)), 63);  // UTF-8 lead
}

TEST(ClassFingerprintTest, CoversRequiresMaskAndCounts) {
  const ClassFingerprint hay = FingerprintOf("aab c");
  EXPECT_TRUE(hay.Covers(FingerprintOf("aa")));
  EXPECT_TRUE(hay.Covers(FingerprintOf("cab a")));
  // Needs three 'a's; the haystack has two.
  EXPECT_FALSE(hay.Covers(FingerprintOf("aaa")));
  // Needs a class the haystack lacks.
  EXPECT_FALSE(hay.Covers(FingerprintOf("d")));
  EXPECT_FALSE(hay.Covers(FingerprintOf("A")));
  // Mask-only containment ignores counts.
  EXPECT_TRUE(hay.MaskCovers(FingerprintOf("aaa")));
  EXPECT_FALSE(hay.MaskCovers(FingerprintOf("d")));
}

TEST(ClassFingerprintTest, CountsSaturateAt255) {
  const ClassFingerprint fp = FingerprintOf(std::string(1000, 'x'));
  EXPECT_EQ(fp.counts[ClassOf('x')], 255);
  EXPECT_TRUE(fp.Covers(FingerprintOf(std::string(300, 'x'))));
}

TEST(MatchAutomatonTest, EmptyPatternSet) {
  const MatchAutomaton machine({});
  std::vector<size_t> first_begin;
  machine.Scan("any text at all", &first_begin);
  EXPECT_TRUE(first_begin.empty());
  EXPECT_EQ(machine.num_patterns(), 0u);
  EXPECT_GE(machine.num_states(), 1u);
}

TEST(MatchAutomatonTest, EmptyPatternNeverMatches) {
  const std::vector<std::string> patterns = {"", "ab"};
  const MatchAutomaton machine(patterns);
  ExpectFindParity(machine, patterns, "abab");
  ExpectFindParity(machine, patterns, "");
}

TEST(MatchAutomatonTest, ClassicOverlappingPatterns) {
  const std::vector<std::string> patterns = {"he", "she", "his", "hers"};
  const MatchAutomaton machine(patterns);
  ExpectFindParity(machine, patterns, "ushers");
  ExpectFindParity(machine, patterns, "she sells seashells");
  ExpectFindParity(machine, patterns, "hah");
  ExpectFindParity(machine, patterns, "");
}

TEST(MatchAutomatonTest, PrefixOfAnotherPattern) {
  const std::vector<std::string> patterns = {"the", "then", "the quick",
                                             "hen"};
  const MatchAutomaton machine(patterns);
  ExpectFindParity(machine, patterns, "then the quick fox");
  ExpectFindParity(machine, patterns, "the");
  ExpectFindParity(machine, patterns, "then");
  ExpectFindParity(machine, patterns, "athens");
}

TEST(MatchAutomatonTest, DuplicatePatternsAllReported) {
  const std::vector<std::string> patterns = {"abc", "abc"};
  const MatchAutomaton machine(patterns);
  std::vector<size_t> first_begin;
  machine.Scan("xxabcxx", &first_begin);
  ASSERT_EQ(first_begin.size(), 2u);
  EXPECT_EQ(first_begin[0], 2u);
  EXPECT_EQ(first_begin[1], 2u);
}

TEST(MatchAutomatonTest, Utf8MultibyteBoundaries) {
  // Byte-level matching must agree with byte-level find even when
  // patterns and text carry multibyte sequences, including a pattern
  // whose bytes begin inside another character's encoding.
  const std::string cafe = "caf\xC3\xA9";          // café
  const std::string accent = "\xC3\xA9tat";        // état
  const std::string lead_only = "\xC3\xA9";        // é alone
  const std::vector<std::string> patterns = {cafe, accent, lead_only, "tat"};
  const MatchAutomaton machine(patterns);
  ExpectFindParity(machine, patterns, "un caf\xC3\xA9 dans l'\xC3\xA9tat");
  ExpectFindParity(machine, patterns, "caf\xC3");  // truncated sequence
  ExpectFindParity(machine, patterns, "\xC3\xA9\xC3\xA9");
  ExpectFindParity(machine, patterns, "plain ascii only");
}

TEST(MatchAutomatonTest, FirstOccurrenceIsLeftmost) {
  const std::vector<std::string> patterns = {"aa"};
  const MatchAutomaton machine(patterns);
  std::vector<size_t> first_begin;
  machine.Scan("baaaa", &first_begin);
  EXPECT_EQ(first_begin[0], 1u);  // not 2 or 3 — overlaps report leftmost
}

TEST(MatchAutomatonTest, RandomizedFindParity) {
  // Deterministic fuzz over a 4-letter alphabet (dense overlaps).
  Rng rng(1234);
  const char alphabet[] = {'a', 'b', ' ', '.'};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::string> patterns;
    const size_t num_patterns = 1 + rng.NextBelow(8);
    for (size_t p = 0; p < num_patterns; ++p) {
      std::string pattern;
      const size_t len = 1 + rng.NextBelow(5);
      for (size_t i = 0; i < len; ++i) {
        pattern += alphabet[rng.NextBelow(4)];
      }
      patterns.push_back(pattern);
    }
    const MatchAutomaton machine(patterns);
    std::string text;
    const size_t text_len = rng.NextBelow(60);
    for (size_t i = 0; i < text_len; ++i) {
      text += alphabet[rng.NextBelow(4)];
    }
    ExpectFindParity(machine, patterns, text);
  }
}

}  // namespace
}  // namespace automaton
}  // namespace coachlm
