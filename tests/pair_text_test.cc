#include "lm/pair_text.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace lm {
namespace {

InstructionPair Sample() {
  InstructionPair pair;
  pair.id = 9;
  pair.category = Category::kSummarization;
  pair.instruction = "Summarize this.";
  pair.input = "Line one.\nLine two.";
  pair.output = "A short summary.\nWith a second line.";
  return pair;
}

TEST(PairTextTest, SerializeDeserializeRoundTrip) {
  const InstructionPair pair = Sample();
  auto parsed = DeserializePair(SerializePair(pair));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->instruction, pair.instruction);
  EXPECT_EQ(parsed->input, pair.input);
  EXPECT_EQ(parsed->output, pair.output);
}

TEST(PairTextTest, EmptyInputAndOutputRoundTrip) {
  InstructionPair pair;
  pair.instruction = "Do something.";
  auto parsed = DeserializePair(SerializePair(pair));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->input, "");
  EXPECT_EQ(parsed->output, "");
}

TEST(PairTextTest, RejectsMalformedText) {
  EXPECT_FALSE(DeserializePair("").ok());
  EXPECT_FALSE(DeserializePair("random model babble").ok());
  EXPECT_FALSE(DeserializePair("Instruction: x\nno response section").ok());
  EXPECT_FALSE(DeserializePair("Response: y\nInput: z").ok());
  // Empty instruction is invalid.
  EXPECT_FALSE(
      DeserializePair("Instruction: \nInput: \nResponse: ok").ok());
}

TEST(PairTextTest, CoachSampleFollowsFigureThree) {
  InstructionPair original = Sample();
  InstructionPair revised = original;
  revised.output = "A much better summary with detail.";
  const InstructionPair sample = MakeCoachSample(original, revised);
  EXPECT_EQ(sample.instruction, kRevisionPrompt);
  EXPECT_EQ(sample.input, SerializePair(original));
  EXPECT_EQ(sample.output, SerializePair(revised));
  EXPECT_EQ(sample.id, original.id);
}

TEST(PairTextTest, PromptMatchesPaperWording) {
  const std::string prompt = kRevisionPrompt;
  EXPECT_NE(prompt.find("Improve the following instruction"),
            std::string::npos);
  EXPECT_NE(prompt.find("grammarly corrected"), std::string::npos);
}

}  // namespace
}  // namespace lm
}  // namespace coachlm
