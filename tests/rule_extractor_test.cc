#include "lm/rule_extractor.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace lm {
namespace {

RevisionRecord Record(const std::string& orig_instr,
                      const std::string& orig_out,
                      const std::string& rev_instr,
                      const std::string& rev_out) {
  RevisionRecord record;
  record.original.instruction = orig_instr;
  record.original.output = orig_out;
  record.revised.instruction = rev_instr;
  record.revised.output = rev_out;
  record.RecomputeDerived();
  return record;
}

TEST(TokenizeWithLayoutTest, NewlinesBecomeReservedToken) {
  const auto tokens = TokenizeWithLayout("a\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], kLayoutNewline);
}

TEST(LooksLikeClosingTest, RecognizesWarmth) {
  EXPECT_TRUE(LooksLikeClosing("I hope this helps!"));
  EXPECT_TRUE(LooksLikeClosing("Hope this helps; happy to expand."));
  EXPECT_FALSE(LooksLikeClosing("Gravity attracts masses."));
}

TEST(MechanicalOpenerTest, DetectsBoilerplate) {
  EXPECT_GT(MechanicalOpenerLength("As an AI language model, here is"), 0u);
  EXPECT_GT(MechanicalOpenerLength("OUTPUT: result"), 0u);
  EXPECT_EQ(MechanicalOpenerLength("Gravity is a force."), 0u);
}

TEST(RuleExtractorTest, LearnsSpellingSubstitutions) {
  RuleExtractor extractor;
  for (int i = 0; i < 3; ++i) {
    extractor.Consume(Record("Explain item " + std::to_string(i) + ".",
                             "This is teh answer about item.",
                             "Explain item " + std::to_string(i) + ".",
                             "This is the answer about item."));
  }
  const RuleStore store = extractor.Finalize();
  EXPECT_EQ(store.BestSubstitution("teh", 2), "the");
}

TEST(RuleExtractorTest, LearnsCapitalization) {
  RuleExtractor extractor;
  for (int i = 0; i < 3; ++i) {
    extractor.Consume(Record("Q" + std::to_string(i) + "?",
                             "the answer is clear and simple today.",
                             "Q" + std::to_string(i) + "?",
                             "The answer is clear and simple today."));
  }
  EXPECT_GE(extractor.Finalize().capitalize_support, 3u);
}

TEST(RuleExtractorTest, LearnsOpenerRemoval) {
  RuleExtractor extractor;
  for (int i = 0; i < 3; ++i) {
    // The injector prepends the opener to the intact (capitalized)
    // response, so stripping it leaves the original text unchanged.
    extractor.Consume(Record(
        "Q" + std::to_string(i) + "?",
        "As an AI language model, The sky appears blue due to scattering.",
        "Q" + std::to_string(i) + "?",
        "The sky appears blue due to scattering."));
  }
  const RuleStore store = extractor.Finalize();
  EXPECT_FALSE(RuleStore::PhrasesAbove(store.opener_removals, 2).empty());
}

TEST(RuleExtractorTest, LearnsClosingsOnlyFromRepeatedWarmSentences) {
  RuleExtractor extractor;
  for (int i = 0; i < 5; ++i) {
    extractor.Consume(Record(
        "Q" + std::to_string(i) + "?",
        "Water boils at one hundred degrees at sea level pressure.",
        "Q" + std::to_string(i) + "?",
        "Water boils at one hundred degrees at sea level pressure. "
        "Unique topical sentence number " + std::to_string(i) +
        " goes here. I hope this helps!"));
  }
  const RuleStore store = extractor.Finalize();
  const auto closings = RuleStore::PhrasesAbove(store.closings, 2);
  ASSERT_EQ(closings.size(), 1u);
  EXPECT_NE(closings[0].find("hope this helps"), std::string::npos);
  EXPECT_GT(store.closing_rate, 0.9);
}

TEST(RuleExtractorTest, LearnsCommaMarkers) {
  RuleExtractor extractor;
  for (int i = 0; i < 5; ++i) {
    extractor.Consume(Record(
        "Q" + std::to_string(i) + "?",
        "Stars shine by fusing hydrogen in their cores every day.",
        "Q" + std::to_string(i) + "?",
        "Stars shine by fusing hydrogen in their cores every day. "
        "For example, giant stars burn item " + std::to_string(i) +
        " faster than dwarfs."));
  }
  const RuleStore store = extractor.Finalize();
  const auto markers = RuleStore::PhrasesAbove(store.markers, 2);
  ASSERT_FALSE(markers.empty());
  EXPECT_EQ(markers[0], "For example,");
}

TEST(RuleExtractorTest, ExpansionStatisticsAccumulate) {
  RuleExtractor extractor;
  extractor.Consume(Record("Q?", "Short answer here today.",
                           "Q?",
                           "Short answer here today. First added sentence "
                           "with words. Second added sentence with words."));
  const RuleStore store = extractor.Finalize();
  EXPECT_EQ(store.train_pairs, 1u);
  EXPECT_GE(store.mean_appended_sentences, 2.0);
  EXPECT_GT(store.mean_target_response_words, 10.0);
}

TEST(RuleExtractorTest, RewritePolicyLearnedFromBothClasses) {
  // Relatedness feature is injected: rewritten originals score low,
  // patched originals high.
  RuleExtractor extractor([](const InstructionPair& pair) {
    return pair.output.find("related") != std::string::npos ? 0.8 : 0.05;
  });
  // Patched: related original, modest edit.
  extractor.Consume(Record("Q?", "A long related answer about the topic.",
                           "Q?",
                           "A long related answer about the topic. Plus "
                           "one more sentence of depth."));
  // Rewritten: off-topic original replaced wholesale.
  extractor.Consume(Record("Q?", "Totally different off subject words.",
                           "Q?",
                           "A brand new never seen reply covering what was "
                           "asked with plenty of detail."));
  const RuleStore store = extractor.Finalize();
  EXPECT_GT(store.rewrite_rate, 0.0);
  EXPECT_GT(store.rewrite_overlap_threshold, 0.05);
  EXPECT_LT(store.rewrite_overlap_threshold, 0.8);
}

TEST(RuleExtractorTest, NoRewriteThresholdWithoutBothClasses) {
  RuleExtractor extractor;
  extractor.Consume(Record("Q?", "Answer kept mostly intact here.",
                           "Q?", "Answer kept mostly intact here. More."));
  EXPECT_LT(extractor.Finalize().rewrite_overlap_threshold, 0.0);
}

TEST(RuleExtractorTest, InstructionClauseRemovalLearned) {
  RuleExtractor extractor;
  for (int i = 0; i < 3; ++i) {
    extractor.Consume(Record(
        "Explain topic " + std::to_string(i) +
            ". Answer in exactly zero words.",
        "Answer here.",
        "Explain topic " + std::to_string(i) + ".", "Answer here."));
  }
  const RuleStore store = extractor.Finalize();
  EXPECT_FALSE(RuleStore::PhrasesAbove(store.strip_phrases, 2).empty());
}

}  // namespace
}  // namespace lm
}  // namespace coachlm
