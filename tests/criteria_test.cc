#include "quality/criteria.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/generator.h"

namespace coachlm {
namespace quality {
namespace {

InstructionPair Pair(const std::string& instruction, const std::string& output,
                     Category category = Category::kGeneralQa) {
  InstructionPair pair;
  pair.instruction = instruction;
  pair.output = output;
  pair.category = category;
  return pair;
}

TEST(CriteriaTest, RedLineCapsResponseAtForty) {
  const auto unsafe =
      Pair("Explain x.",
           "Here is a guaranteed stock tip: put everything in and enjoy. "
           "This advice is complete, detailed, warm, and beautifully "
           "formatted, with plenty of reasoning behind every point.");
  const QualityScore score = ResponseScorer().Score(unsafe);
  EXPECT_TRUE(score.RedLineViolated());
  EXPECT_LE(score.score, 40.0);
}

TEST(CriteriaTest, BasicFlawCapsResponseAtEighty) {
  // Truncated response: comprehensiveness flaw, everything else fine.
  const auto truncated = Pair("Explain gravity in depth.",
                              "Gravity is the force that always seems to");
  const QualityScore score = ResponseScorer().Score(truncated);
  EXPECT_TRUE(score.HasBasicFlaw());
  EXPECT_LE(score.score, 80.0);
  EXPECT_GE(score.score, 40.0);
}

TEST(CriteriaTest, FlawlessBasicScoresAboveEighty) {
  const auto good = Pair(
      "Explain gravity briefly for a newsletter.",
      "Gravity is the attractive force between masses. For example, the "
      "Moon's gravity causes the ocean tides on Earth. I hope this helps — "
      "feel free to ask if anything is unclear!");
  const QualityScore score = ResponseScorer().Score(good);
  EXPECT_FALSE(score.HasBasicFlaw());
  EXPECT_GT(score.score, 80.0);
  EXPECT_LE(score.score, 100.0);
}

TEST(CriteriaTest, InstructionBasicFlawCapsAtEighty) {
  const auto bad = Pair("explain teh thing with stuff.", "x");
  const QualityScore score = InstructionScorer().Score(bad);
  EXPECT_TRUE(score.HasBasicFlaw());
  EXPECT_LE(score.score, 80.0);
}

TEST(CriteriaTest, InstructionAdvancedBandNeedsCleanBasics) {
  const auto rich = Pair(
      "Summarize the water cycle. Assume the reader is a curious beginner "
      "with no background in science. Include at least one concrete "
      "example to support your answer.",
      "x");
  const QualityScore score = InstructionScorer().Score(rich);
  EXPECT_FALSE(score.HasBasicFlaw());
  EXPECT_GT(score.score, 90.0);
}

TEST(CriteriaTest, SatisfactionLookup) {
  const auto pair = Pair("Explain gravity.", "Gravity pulls objects down.");
  const QualityScore score = ResponseScorer().Score(pair);
  EXPECT_GT(score.Satisfaction(Dimension::kSafety), 0.5);
  // Unevaluated dimension defaults to satisfied.
  EXPECT_DOUBLE_EQ(score.Satisfaction(Dimension::kFeasibility), 1.0);
}

TEST(CriteriaTest, PairQualityCombinesBothSides) {
  const auto pair = Pair("Explain gravity.", "Gravity pulls objects down.");
  const PairQuality quality = ScorePair(pair);
  EXPECT_DOUBLE_EQ(quality.Combined(),
                   (quality.instruction.score + quality.response.score) / 2);
}

// Property: capping invariants hold across a random corpus slice.
class CriteriaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CriteriaPropertyTest, CappingInvariants) {
  synth::CorpusConfig config;
  config.size = 120;
  config.seed = GetParam();
  const synth::SynthCorpus corpus =
      synth::SynthCorpusGenerator(config).Generate();
  for (const InstructionPair& pair : corpus.dataset) {
    const PairQuality q = ScorePair(pair);
    EXPECT_GE(q.response.score, 0.0);
    EXPECT_LE(q.response.score, 100.0);
    EXPECT_GE(q.instruction.score, 0.0);
    EXPECT_LE(q.instruction.score, 100.0);
    if (q.response.RedLineViolated()) {
      EXPECT_LE(q.response.score, 40.0);
    } else if (q.response.HasBasicFlaw()) {
      EXPECT_LE(q.response.score, 80.0);
      EXPECT_GE(q.response.score, 40.0);
    } else {
      EXPECT_GE(q.response.score, 80.0);
    }
    if (q.instruction.HasBasicFlaw()) {
      EXPECT_LE(q.instruction.score, 80.0);
    } else {
      EXPECT_GE(q.instruction.score, 80.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriteriaPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace quality
}  // namespace coachlm
