// Compiled-rule-engine contract: the CompiledRuleSet freezes exactly the
// tables the scan path derives per call, the RuleMatcher answers exactly
// what strings::Contains / find / StartsWith would, and — the acceptance
// gate — coach revision through the compiled engine is byte-identical to
// the scan engine over the golden corpora at every thread count and seed.

#include "lm/rule_compile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coach/coach_lm.h"
#include "coach/trainer.h"
#include "common/execution.h"
#include "determinism_fixture.h"
#include "expert/pipeline.h"
#include "lm/pair_text.h"
#include "synth/generator.h"

namespace coachlm {
namespace lm {
namespace {

RuleStore PopulatedStore() {
  RuleStore store;
  store.token_subs["teh"]["the"] = 12;
  store.token_subs["teh"]["then"] = 1;
  store.token_subs["recieve"]["receive"] = 3;
  store.token_subs["hopeless"]["x"] = 1;  // below support: compiles away
  store.capitalize_support = 5;
  store.doubled_removal_support = 2;
  store.reflow_support = 7;
  store.strip_tokens["OUTPUT:"] = 4;
  store.opener_removals["As an AI language model,"] = 6;
  store.closings["Hope this helps!"] = 9;
  store.closings["Rare closing."] = 1;
  store.markers["For example,"] = 11;
  store.context_exemplars["Keep the answer under 200 words."] = 3;
  store.strip_phrases["in zero words"] = 2;
  store.strip_phrases["without using words"] = 2;  // equal support: tie
  store.filler_replacements["the thing"] = {"gravity", "chess"};
  store.filler_replacements["one-shot"] = {"once"};  // < 2: compiles away
  store.train_pairs = 100;
  store.mean_appended_sentences = 2.5;
  store.mean_target_response_words = 120.0;
  store.closing_rate = 0.8;
  store.context_add_rate = 0.1;
  store.rewrite_rate = 0.3;
  store.rewrite_overlap_threshold = 0.12;
  return store;
}

TEST(CompiledRuleSetTest, FamiliesMatchScanDerivation) {
  const RuleStore store = PopulatedStore();
  const CompiledRuleSet compiled(store, /*min_support=*/2);

  // token_subs: map order, best replacement resolved, sub-support dropped.
  ASSERT_EQ(compiled.token_subs().size(), 2u);
  EXPECT_EQ(compiled.token_subs()[0].from, "recieve");
  EXPECT_EQ(compiled.token_subs()[0].to, "receive");
  EXPECT_EQ(compiled.token_subs()[1].from, "teh");
  EXPECT_EQ(compiled.token_subs()[1].to, "the");

  // strip_phrases: PhrasesAbove order — equal support ties lexicographic.
  ASSERT_EQ(compiled.strip_phrases().size(), 2u);
  EXPECT_EQ(compiled.strip_phrases()[0].text, "in zero words");
  EXPECT_EQ(compiled.strip_phrases()[1].text, "without using words");

  // fillers: only phrases with >= 2 distinct replacements.
  ASSERT_EQ(compiled.fillers().size(), 1u);
  EXPECT_EQ(compiled.fillers()[0].text, "the thing");

  ASSERT_EQ(compiled.openers().size(), 1u);
  EXPECT_EQ(compiled.openers()[0].text, "As an AI language model,");
  ASSERT_EQ(compiled.strip_tokens().size(), 1u);
  EXPECT_EQ(compiled.strip_tokens()[0].text, "OUTPUT:");

  // Rotation tables and gates.
  EXPECT_EQ(compiled.closings(),
            RuleStore::PhrasesAbove(store.closings, 2));
  EXPECT_EQ(compiled.markers(), RuleStore::PhrasesAbove(store.markers, 2));
  EXPECT_TRUE(compiled.capitalize());
  EXPECT_TRUE(compiled.remove_doubled());
  EXPECT_TRUE(compiled.reflow());
  EXPECT_DOUBLE_EQ(compiled.closing_rate(), 0.8);
  EXPECT_EQ(compiled.expansion_budget(), 3u);  // llround(2.5) = 3

  // One automaton pattern per searched-inside rule.
  EXPECT_EQ(compiled.num_patterns(), 2u + 2u + 1u + 1u + 1u);
  EXPECT_GT(compiled.matcher_automaton().num_states(), 1u);
}

TEST(CompiledRuleSetTest, HighSupportThresholdCompilesEmptyFamilies) {
  const CompiledRuleSet compiled(PopulatedStore(), /*min_support=*/100);
  EXPECT_TRUE(compiled.token_subs().empty());
  EXPECT_TRUE(compiled.strip_phrases().empty());
  EXPECT_TRUE(compiled.openers().empty());
  EXPECT_TRUE(compiled.strip_tokens().empty());
  EXPECT_TRUE(compiled.closings().empty());
  EXPECT_FALSE(compiled.capitalize());
  // Fillers are not support-gated on the scan path either.
  EXPECT_EQ(compiled.fillers().size(), 1u);
}

TEST(CompiledRuleSetTest, EmptyStoreCompiles) {
  const CompiledRuleSet compiled(RuleStore(), /*min_support=*/2);
  EXPECT_EQ(compiled.num_patterns(), 0u);
  EXPECT_TRUE(compiled.token_subs().empty());
  RuleMatcher matcher(compiled, "some text");
  // No patterns to probe; constructing and noting edits must be safe.
  matcher.NoteReplacement("abc");
}

TEST(RuleMatcherTest, ExactAnswersWhileUnmutated) {
  const CompiledRuleSet compiled(PopulatedStore(), /*min_support=*/2);
  const uint32_t teh = compiled.token_subs()[1].pattern;
  const uint32_t opener = compiled.openers()[0].pattern;

  const std::string text = "As an AI language model, I saw teh cat.";
  RuleMatcher matcher(compiled, text);
  EXPECT_TRUE(matcher.Contains(teh, text));
  EXPECT_EQ(matcher.FirstBegin(teh, text), text.find("teh"));
  EXPECT_TRUE(matcher.StartsWith(opener, text));

  const std::string elsewhere = "text with As an AI language model, inside";
  RuleMatcher matcher2(compiled, elsewhere);
  EXPECT_FALSE(matcher2.StartsWith(opener, elsewhere));
  EXPECT_FALSE(matcher2.Contains(teh, elsewhere));
}

TEST(RuleMatcherTest, PrefilterRejectsWithoutStringWork) {
  const CompiledRuleSet compiled(PopulatedStore(), /*min_support=*/2);
  const uint32_t output_token = compiled.strip_tokens()[0].pattern;
  // "OUTPUT:" needs uppercase letters and ':' — absent here, so the
  // fingerprint alone answers.
  const std::string text = "all lowercase words only";
  RuleMatcher matcher(compiled, text);
  EXPECT_FALSE(matcher.Contains(output_token, text));
  EXPECT_EQ(matcher.prefilter_rejected(), 1u);
}

TEST(RuleMatcherTest, MutationDegradesToDirectProbes) {
  const CompiledRuleSet compiled(PopulatedStore(), /*min_support=*/2);
  const uint32_t teh = compiled.token_subs()[1].pattern;
  const uint32_t recieve = compiled.token_subs()[0].pattern;

  std::string text = "no match for t-e-h here, and no receipt misspelling";
  RuleMatcher matcher(compiled, text);
  EXPECT_FALSE(matcher.Contains(teh, text));
  // A replacement can mint new matches; the matcher must see them.
  text = "now teh appeared";
  matcher.NoteReplacement("teh");
  EXPECT_TRUE(matcher.Contains(teh, text));
  // Still absent — and answered through the conservative path.
  EXPECT_FALSE(matcher.Contains(recieve, text));
}

TEST(RuleMatcherTest, ErasureCannotMintClasses) {
  const CompiledRuleSet compiled(PopulatedStore(), /*min_support=*/2);
  const uint32_t output_token = compiled.strip_tokens()[0].pattern;
  std::string text = "lowercase before mutation";
  RuleMatcher matcher(compiled, text);
  matcher.NoteErasure();
  const size_t rejected_before = matcher.prefilter_rejected();
  // "OUTPUT:"'s classes were never reachable: still an O(1) rejection
  // even after the mutation.
  EXPECT_FALSE(matcher.Contains(output_token, text));
  EXPECT_EQ(matcher.prefilter_rejected(), rejected_before + 1);
}

/// The acceptance gate: compiled-vs-scan byte identity over corpora.
class RuleEngineEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  size_t threads() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, RuleEngineEquivalenceTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& param) {
                           return "threads" + std::to_string(param.param);
                         });

TEST_P(RuleEngineEquivalenceTest, FixtureCorpusByteIdenticalAcrossSeeds) {
  for (const uint64_t seed : {23ULL, 7ULL, 20260809ULL}) {
    coach::CoachConfig scan_config;
    scan_config.alpha = 1.0;
    scan_config.seed = seed;
    scan_config.compiled_rules = false;
    coach::CoachConfig compiled_config = scan_config;
    compiled_config.compiled_rules = true;

    const coach::CoachLm scan_model =
        coach::CoachTrainer(scan_config).Train(testfix::FixtureRevisions());
    const coach::CoachLm compiled_model =
        coach::CoachTrainer(compiled_config)
            .Train(testfix::FixtureRevisions());
    ASSERT_EQ(scan_model.compiled_rules(), nullptr);
    ASSERT_NE(compiled_model.compiled_rules(), nullptr);

    const ExecutionContext exec(threads());
    const InstructionDataset scan_out =
        scan_model.ReviseDataset(testfix::FixtureCorpus(), {}, nullptr, exec);
    const InstructionDataset compiled_out = compiled_model.ReviseDataset(
        testfix::FixtureCorpus(), {}, nullptr, exec);
    ASSERT_EQ(scan_out.size(), compiled_out.size());
    for (size_t i = 0; i < scan_out.size(); ++i) {
      EXPECT_EQ(lm::SerializePair(compiled_out[i]),
                lm::SerializePair(scan_out[i]))
          << "seed " << seed << " pair " << i;
    }
  }
}

TEST_P(RuleEngineEquivalenceTest, SyntheticCorpusByteIdentical) {
  // A trained-for-real rule store over a generated corpus: the same
  // pipeline the end-to-end golden uses, compared engine vs engine.
  synth::CorpusConfig corpus_config;
  corpus_config.size = 600;
  corpus_config.seed = 42;
  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate();
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = 250;
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);

  coach::CoachConfig scan_config;
  scan_config.alpha = 0.3;
  scan_config.compiled_rules = false;
  coach::CoachConfig compiled_config = scan_config;
  compiled_config.compiled_rules = true;

  const coach::CoachLm scan_model =
      coach::CoachTrainer(scan_config).Train(study.revisions);
  const coach::CoachLm compiled_model =
      coach::CoachTrainer(compiled_config).Train(study.revisions);

  const ExecutionContext exec(threads());
  const InstructionDataset scan_out =
      scan_model.ReviseDataset(corpus.dataset, {}, nullptr, exec);
  const InstructionDataset compiled_out =
      compiled_model.ReviseDataset(corpus.dataset, {}, nullptr, exec);
  EXPECT_EQ(testfix::HashDataset(compiled_out),
            testfix::HashDataset(scan_out));
}

}  // namespace
}  // namespace lm
}  // namespace coachlm
