#include "synth/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "quality/accuracy_rater.h"

namespace coachlm {
namespace synth {
namespace {

CorpusConfig SmallConfig() {
  CorpusConfig config;
  config.size = 3000;
  config.seed = 42;
  return config;
}

TEST(GeneratorTest, ProducesRequestedSizeWithUniqueIds) {
  const SynthCorpus corpus = SynthCorpusGenerator(SmallConfig()).Generate();
  EXPECT_EQ(corpus.dataset.size(), 3000u);
  EXPECT_EQ(corpus.defects.size(), 3000u);
  std::set<uint64_t> ids;
  for (const InstructionPair& pair : corpus.dataset) {
    EXPECT_TRUE(ids.insert(pair.id).second);
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  const SynthCorpus a = SynthCorpusGenerator(SmallConfig()).Generate();
  const SynthCorpus b = SynthCorpusGenerator(SmallConfig()).Generate();
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (size_t i = 0; i < a.dataset.size(); ++i) {
    EXPECT_EQ(a.dataset[i], b.dataset[i]);
    EXPECT_EQ(a.defects[i], b.defects[i]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  CorpusConfig other = SmallConfig();
  other.seed = 43;
  const SynthCorpus a = SynthCorpusGenerator(SmallConfig()).Generate();
  const SynthCorpus b = SynthCorpusGenerator(other).Generate();
  size_t differing = 0;
  for (size_t i = 0; i < a.dataset.size(); ++i) {
    if (!(a.dataset[i] == b.dataset[i])) ++differing;
  }
  EXPECT_GT(differing, a.dataset.size() / 2);
}

TEST(GeneratorTest, RatesMatchConfiguration) {
  const SynthCorpus corpus = SynthCorpusGenerator(SmallConfig()).Generate();
  size_t excluded = 0, deficient = 0;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    if (corpus.IsExcludedClass(i)) ++excluded;
    else if (corpus.IsDeficient(i)) ++deficient;
  }
  const double n = static_cast<double>(corpus.dataset.size());
  EXPECT_NEAR(excluded / n, 0.18, 0.03);
  // Deficiency applies to the non-excluded share.
  EXPECT_NEAR(deficient / (n - excluded), 0.468, 0.05);
}

TEST(GeneratorTest, CoversEveryCategory) {
  const SynthCorpus corpus = SynthCorpusGenerator(SmallConfig()).Generate();
  const DatasetStats stats = corpus.dataset.ComputeStats();
  EXPECT_EQ(stats.category_counts.size(), kNumCategories);
}

TEST(GeneratorTest, CodeCategoriesAreSparse) {
  const SynthCorpus corpus = SynthCorpusGenerator(SmallConfig()).Generate();
  const DatasetStats stats = corpus.dataset.ComputeStats();
  const size_t coding = stats.category_counts.at(Category::kCoding);
  const size_t general = stats.category_counts.at(Category::kGeneralQa);
  EXPECT_LT(coding * 2, general);  // weight 0.35 vs 1.0
}

TEST(GeneratorTest, CalibratedQualityDistribution) {
  // The headline calibration of Fig. 4's "before" bars: mean ChatGPT-style
  // rating near 3.95 and roughly 17.7% of pairs above 4.5.
  CorpusConfig config = SmallConfig();
  config.size = 6000;
  const SynthCorpus corpus = SynthCorpusGenerator(config).Generate();
  const auto rating =
      quality::AccuracyRater().RateDataset(corpus.dataset);
  EXPECT_NEAR(rating.mean, 3.95, 0.25);
  EXPECT_NEAR(rating.fraction_above_45, 0.177, 0.06);
}

TEST(GeneratorTest, ExcludedPairsCarryOnlyExclusionDefects) {
  const SynthCorpus corpus = SynthCorpusGenerator(SmallConfig()).Generate();
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    if (!corpus.IsExcludedClass(i)) continue;
    EXPECT_EQ(corpus.defects[i].size(), 1u);
    EXPECT_TRUE(IsExclusionDefect(corpus.defects[i][0]));
  }
}

}  // namespace
}  // namespace synth
}  // namespace coachlm
