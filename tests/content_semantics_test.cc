// Category-specific contracts of the content engine: each task type's
// clean response must actually answer its instruction (the semantic
// guarantees the quality analyzers and the expert oracle rely on).

#include <gtest/gtest.h>

#include "synth/arith.h"
#include "synth/content_engine.h"
#include "text/string_util.h"

namespace coachlm {
namespace synth {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  InstructionPair Build(Category category, size_t topic_index,
                        uint64_t seed) {
    Rng rng(seed);
    ResponseRichness richness;
    richness.explanations = 1;
    return engine_.BuildCleanPair(seed, category,
                                  Topics()[topic_index % Topics().size()],
                                  richness, &rng);
  }
  ContentEngine engine_;
};

TEST_F(SemanticsTest, ClassificationAnswersTheTopicDomain) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const size_t topic_index = seed * 3;
    const InstructionPair pair =
        Build(Category::kTextClassification, topic_index, seed);
    const Topic& topic = Topics()[topic_index % Topics().size()];
    EXPECT_TRUE(strings::Contains(pair.output, "Category: " + topic.domain))
        << pair.output;
  }
}

TEST_F(SemanticsTest, SentimentMatchesReviewPolarity) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const InstructionPair pair =
        Build(Category::kSentimentAnalysis, seed, seed);
    const bool positive_review = strings::Contains(pair.input, "enjoyed");
    const bool positive_answer =
        strings::Contains(pair.output, "Sentiment: positive");
    EXPECT_EQ(positive_review, positive_answer)
        << pair.input << " -> " << pair.output;
  }
}

TEST_F(SemanticsTest, SummaryStatesTheTopicFact) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const size_t topic_index = seed;
    const InstructionPair pair =
        Build(Category::kSummarization, topic_index, seed);
    const Topic& topic = Topics()[topic_index % Topics().size()];
    EXPECT_TRUE(TopicOwnsText(topic, pair.output)) << pair.output;
  }
}

TEST_F(SemanticsTest, GrammarCorrectionOutputIsCleanedInput) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const InstructionPair pair =
        Build(Category::kGrammarCorrection, seed, seed);
    // The corrected sentence must carry no known misspelling and start
    // upper-case.
    const size_t at = pair.output.find(": ");
    ASSERT_NE(at, std::string::npos);
    const std::string corrected = pair.output.substr(at + 2);
    EXPECT_FALSE(strings::Contains(corrected, "teh"));
    EXPECT_FALSE(strings::Contains(corrected, "recieve"));
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(corrected[0])))
        << corrected;
  }
}

TEST_F(SemanticsTest, HowToGuideIsANumberedList) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const InstructionPair pair = Build(Category::kHowToGuide, seed, seed);
    EXPECT_TRUE(strings::Contains(pair.output, "\n1. ")) << pair.output;
    EXPECT_TRUE(strings::Contains(pair.output, "\n2. "));
    EXPECT_TRUE(strings::Contains(pair.output, "\n3. "));
  }
}

TEST_F(SemanticsTest, OrderingAnswerUsesTheGivenStatements) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const InstructionPair pair = Build(Category::kOrdering, seed, seed);
    // Every lettered input statement appears in the ordered answer.
    for (const char* marker : {"A) ", "B) ", "C) "}) {
      const size_t at = pair.input.find(marker);
      ASSERT_NE(at, std::string::npos);
      size_t end = pair.input.find('\n', at);
      if (end == std::string::npos) end = pair.input.size();
      const std::string statement = pair.input.substr(at + 3, end - at - 3);
      EXPECT_TRUE(strings::Contains(pair.output, statement))
          << statement << " missing from " << pair.output;
    }
  }
}

TEST_F(SemanticsTest, ComparisonMentionsBothSubjects) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const size_t topic_index = seed * 2;
    const InstructionPair pair =
        Build(Category::kComparison, topic_index, seed);
    // The instruction names two topics; the response must own content of
    // both.
    size_t owned = 0;
    for (const Topic& topic : Topics()) {
      if (strings::Contains(pair.instruction, topic.name) &&
          TopicOwnsText(topic, pair.output)) {
        ++owned;
      }
    }
    EXPECT_GE(owned, 2u) << pair.instruction << "\n" << pair.output;
  }
}

TEST_F(SemanticsTest, DebuggingAnswerContainsTheFixedCode) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const InstructionPair pair = Build(Category::kDebuggingHelp, seed, seed);
    const CodeTask* task = FindCodeTaskIn(pair.input);
    ASSERT_NE(task, nullptr) << pair.input;
    EXPECT_TRUE(strings::Contains(pair.output, task->code)) << pair.output;
    EXPECT_TRUE(strings::Contains(pair.output, task->bug_note));
  }
}

TEST_F(SemanticsTest, EntityRecognitionNamesTheTopic) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const size_t topic_index = seed + 5;
    const InstructionPair pair =
        Build(Category::kEntityRecognition, topic_index, seed);
    const Topic& topic = Topics()[topic_index % Topics().size()];
    EXPECT_TRUE(strings::Contains(pair.output, topic.name)) << pair.output;
  }
}

TEST_F(SemanticsTest, SentenceCompletionRestoresTheFact) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const size_t topic_index = seed + 11;
    const InstructionPair pair =
        Build(Category::kSentenceCompletion, topic_index, seed);
    const Topic& topic = Topics()[topic_index % Topics().size()];
    EXPECT_TRUE(strings::Contains(pair.output, topic.fact)) << pair.output;
  }
}

TEST_F(SemanticsTest, HealthAdviceCarriesTheDisclaimer) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const InstructionPair pair = Build(Category::kHealthAdvice, seed, seed);
    EXPECT_TRUE(strings::Contains(pair.output, "not a substitute"))
        << pair.output;
  }
}

}  // namespace
}  // namespace synth
}  // namespace coachlm
