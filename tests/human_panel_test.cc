#include "judge/human_panel.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "synth/topic_bank.h"

namespace coachlm {
namespace judge {
namespace {

InstructionPair GoodPair() {
  const synth::Topic& gravity = *synth::FindTopicIn("gravity");
  InstructionPair pair;
  pair.instruction = "Explain gravity for a beginner. Include at least one "
                     "concrete example to support your answer.";
  pair.output = gravity.fact + " " + gravity.details[0] + " " +
                gravity.details[1] +
                " I hope this helps — feel free to ask if anything is "
                "unclear!";
  return pair;
}

InstructionPair WeakPair() {
  InstructionPair pair;
  pair.instruction = "Explain the thing.";
  pair.output = "it is what it";
  return pair;
}

TEST(HumanPanelTest, ThreeReviewersWithDistinctStyles) {
  HumanPanel panel;
  ASSERT_EQ(panel.reviewers().size(), 3u);
  EXPECT_NE(panel.reviewers()[0].bias, panel.reviewers()[1].bias);
}

TEST(HumanPanelTest, ScoresStayInRange) {
  HumanPanel panel;
  for (int i = 0; i < 50; ++i) {
    const PanelScores scores = panel.RateResponse(GoodPair());
    for (double s : scores.reviewer) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 100.0);
    }
  }
}

TEST(HumanPanelTest, BetterPairsScoreHigherForEveryReviewer) {
  HumanPanel panel(123);
  RunningStats good[3], weak[3];
  for (int i = 0; i < 80; ++i) {
    const PanelScores g = panel.RateResponse(GoodPair());
    const PanelScores w = panel.RateResponse(WeakPair());
    for (int r = 0; r < 3; ++r) {
      good[r].Add(g.reviewer[r]);
      weak[r].Add(w.reviewer[r]);
    }
  }
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(good[r].mean(), weak[r].mean() + 15.0);
  }
}

TEST(HumanPanelTest, InstructionAndResponseRatedIndependently) {
  HumanPanel panel(7);
  InstructionPair pair = GoodPair();
  pair.output = "bad";
  const double instruction = panel.RateInstruction(pair).Average();
  const double response = panel.RateResponse(pair).Average();
  EXPECT_GT(instruction, response + 20.0);
}

TEST(HumanPanelTest, RateResponseTextSwapsCandidate) {
  HumanPanel panel(9);
  const InstructionPair task = GoodPair();
  const double strong =
      panel.RateResponseText(task, task.output).Average();
  const double weak = panel.RateResponseText(task, "nope").Average();
  EXPECT_GT(strong, weak);
}

TEST(HumanPanelTest, AverageIsMeanOfReviewers) {
  PanelScores scores;
  scores.reviewer = {60.0, 70.0, 80.0};
  EXPECT_DOUBLE_EQ(scores.Average(), 70.0);
}

}  // namespace
}  // namespace judge
}  // namespace coachlm
