#include "coach/pipeline.h"

#include <gtest/gtest.h>

#include "expert/pipeline.h"
#include "quality/accuracy_rater.h"
#include "synth/generator.h"

namespace coachlm {
namespace coach {
namespace {

class CoachPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 4000;
    config.seed = 42;
    synth::SynthCorpusGenerator generator(config);
    corpus_ = new synth::SynthCorpus(generator.Generate());
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 900;
    study_ = new expert::RevisionStudyResult(expert::RunRevisionStudy(
        corpus_->dataset, generator.engine(), study_config));
    CoachConfig coach_config;
    coach_config.alpha = 0.3;
    result_ = new CoachPipelineResult(
        RunCoachPipeline(corpus_->dataset, study_->revisions, coach_config));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete study_;
    delete corpus_;
  }
  static synth::SynthCorpus* corpus_;
  static expert::RevisionStudyResult* study_;
  static CoachPipelineResult* result_;
};

synth::SynthCorpus* CoachPipelineTest::corpus_ = nullptr;
expert::RevisionStudyResult* CoachPipelineTest::study_ = nullptr;
CoachPipelineResult* CoachPipelineTest::result_ = nullptr;

TEST_F(CoachPipelineTest, RevisedDatasetPreservesSizeAndOrder) {
  ASSERT_EQ(result_->revised_dataset.size(), corpus_->dataset.size());
  for (size_t i = 0; i < corpus_->dataset.size(); ++i) {
    EXPECT_EQ(result_->revised_dataset[i].id, corpus_->dataset[i].id);
  }
}

TEST_F(CoachPipelineTest, QualityRises) {
  // The Fig. 4 movement: mean rating up, >4.5 share up substantially.
  quality::AccuracyRater rater;
  const auto before = rater.RateDataset(corpus_->dataset);
  const auto after = rater.RateDataset(result_->revised_dataset);
  EXPECT_GT(after.mean, before.mean + 0.2);
  EXPECT_GT(after.fraction_above_45, before.fraction_above_45 + 0.25);
}

TEST_F(CoachPipelineTest, ResponsesGrow) {
  // Table VII: revised responses are much longer on average.
  const double before = corpus_->dataset.ComputeStats().avg_response_words;
  const double after =
      result_->revised_dataset.ComputeStats().avg_response_words;
  EXPECT_GT(after, before * 1.5);
}

TEST_F(CoachPipelineTest, InstructionsChangeModestly) {
  // Table VII: only ~8k of 52k instructions change (~15%).
  size_t changed = 0;
  for (size_t i = 0; i < corpus_->dataset.size(); ++i) {
    if (result_->revised_dataset[i].FullInstruction() !=
        corpus_->dataset[i].FullInstruction()) {
      ++changed;
    }
  }
  const double share =
      static_cast<double>(changed) / corpus_->dataset.size();
  EXPECT_GT(share, 0.03);
  EXPECT_LT(share, 0.35);
}

TEST_F(CoachPipelineTest, PostProcessingRatesNearPaper) {
  // ~1.3% invalid outputs replaced; ~1.3% leakage-skipped.
  const double n = static_cast<double>(result_->stats.total);
  ASSERT_GT(n, 0);
  EXPECT_NEAR(result_->stats.invalid_replaced / n, 0.013, 0.012);
  EXPECT_LT(result_->stats.leakage_skipped / n, 0.08);
  EXPECT_GT(result_->stats.changed, result_->stats.total / 3);
}

TEST_F(CoachPipelineTest, AlphaZeroPipelineLeavesQualityFlat) {
  CoachConfig config;
  config.alpha = 0.0;
  const CoachPipelineResult raw =
      RunCoachPipeline(corpus_->dataset, study_->revisions, config);
  quality::AccuracyRater rater;
  const auto before = rater.RateDataset(corpus_->dataset);
  const auto after = rater.RateDataset(raw.revised_dataset);
  EXPECT_NEAR(after.mean, before.mean, 0.1);
}

}  // namespace
}  // namespace coach
}  // namespace coachlm
