#include "text/repair.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace repair {
namespace {

TEST(RepairTest, FixKnownSpelling) {
  EXPECT_EQ(FixKnownSpelling("teh goverment recieve it"),
            "the government receive it");
  EXPECT_EQ(FixKnownSpelling("already clean"), "already clean");
}

TEST(RepairTest, CapitalizeSentences) {
  EXPECT_EQ(CapitalizeSentences("first. second! third? done"),
            "First. Second! Third? Done");
  EXPECT_EQ(CapitalizeSentences("line one\nline two"),
            "Line one\nLine two");
}

TEST(RepairTest, CapitalizeSkipsCodeFences) {
  const std::string code = "Intro:\n```python\ndef f():\n    return 1\n``` done";
  const std::string fixed = CapitalizeSentences(code);
  EXPECT_NE(fixed.find("def f()"), std::string::npos);
  EXPECT_EQ(fixed.find("Def f()"), std::string::npos);
}

TEST(RepairTest, CapitalizeSkipsListDigits) {
  EXPECT_EQ(CapitalizeSentences("1. item stays"), "1. item stays");
}

TEST(RepairTest, RemoveDoubledWords) {
  EXPECT_EQ(RemoveDoubledWords("the the cat sat sat down"),
            "the cat sat down");
  EXPECT_EQ(RemoveDoubledWords("no doubles here"), "no doubles here");
  // Single characters are never treated as doubles ("a a" could be valid).
  EXPECT_EQ(RemoveDoubledWords("a a b"), "a a b");
}

TEST(RepairTest, ReflowLists) {
  EXPECT_EQ(ReflowLists("Items: - one - two"), "Items:\n- one\n- two");
  EXPECT_EQ(ReflowLists("Steps: 1. go 2. stop"), "Steps:\n1. go\n2. stop");
}

TEST(RepairTest, CollapseSpacesKeepsNewlines) {
  EXPECT_EQ(CollapseSpaces("a  b   c"), "a b c");
  EXPECT_EQ(CollapseSpaces("a\n\nb"), "a\n\nb");
}

}  // namespace
}  // namespace repair
}  // namespace coachlm
