#include "synth/arith.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace synth {
namespace {

TEST(ArithTest, AnswerComputesOperators) {
  EXPECT_EQ((ArithProblem{47, 38, '+'}).Answer(), 85);
  EXPECT_EQ((ArithProblem{47, 38, '-'}).Answer(), 9);
  EXPECT_EQ((ArithProblem{15, 21, '*'}).Answer(), 315);
}

TEST(ArithTest, ExpressionRendering) {
  EXPECT_EQ((ArithProblem{7, 3, '*'}).Expression(), "7 * 3");
}

TEST(ArithTest, ParsesEmbeddedProblem) {
  auto p = ParseArithProblem("Calculate 47 + 38 and show your reasoning.");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->lhs, 47);
  EXPECT_EQ(p->rhs, 38);
  EXPECT_EQ(p->op, '+');
}

TEST(ArithTest, ParsesXAsMultiplication) {
  auto p = ParseArithProblem("What is 6 x 7?");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->op, '*');
  EXPECT_EQ(p->Answer(), 42);
}

TEST(ArithTest, NoProblemInPlainText) {
  EXPECT_FALSE(ParseArithProblem("Tell me about gravity.").has_value());
  EXPECT_FALSE(ParseArithProblem("In 1969 humans landed.").has_value());
}

TEST(ArithTest, SkipsDigitsInsideIdentifiers) {
  EXPECT_FALSE(ParseArithProblem("covid19 + vaccine info").has_value());
}

TEST(ArithTest, ParseStatedResult) {
  EXPECT_EQ(*ParseStatedResult("So 47 + 38 = 85."), 85);
  EXPECT_EQ(*ParseStatedResult("x = -12 here"), -12);
  EXPECT_FALSE(ParseStatedResult("no equals sign").has_value());
  EXPECT_FALSE(ParseStatedResult("a = b").has_value());
}

}  // namespace
}  // namespace synth
}  // namespace coachlm
