#include "judge/pairwise_judge.h"

#include <gtest/gtest.h>

#include "synth/topic_bank.h"

namespace coachlm {
namespace judge {
namespace {

InstructionPair Task() {
  InstructionPair task;
  task.id = 1;
  task.category = Category::kGeneralQa;
  task.instruction = "Explain gravity.";
  return task;
}

std::string GoodResponse() {
  const synth::Topic& gravity = *synth::FindTopicIn("gravity");
  return gravity.fact + " " + gravity.details[0] + " " + gravity.details[1] +
         " I hope this helps — feel free to ask if anything is unclear!";
}

std::string WeakResponse() { return "Gravity pulls things"; }

TEST(PairwiseJudgeTest, ClearQualityGapDecidesConsistently) {
  const PairwiseJudge judge(PandaLmProfile());
  Rng rng(3);
  int wins = 0;
  for (int i = 0; i < 100; ++i) {
    if (judge.Compare(Task(), GoodResponse(), WeakResponse(), &rng) ==
        Verdict::kWin) {
      ++wins;
    }
  }
  EXPECT_GT(wins, 95);
}

TEST(PairwiseJudgeTest, IdenticalResponsesMostlyTie) {
  const PairwiseJudge judge(PandaLmProfile());
  Rng rng(5);
  int ties = 0;
  for (int i = 0; i < 200; ++i) {
    if (judge.Compare(Task(), GoodResponse(), GoodResponse(), &rng) ==
        Verdict::kTie) {
      ++ties;
    }
  }
  EXPECT_GT(ties, 60);  // noise makes some comparisons decide randomly
}

TEST(PairwiseJudgeTest, Gpt4PositionBiasFavorsFirstSlot) {
  const PairwiseJudge gpt4(Gpt4Profile());
  Rng rng(7);
  int first_wins = 0, second_wins = 0;
  for (int i = 0; i < 400; ++i) {
    const Verdict v = gpt4.Compare(Task(), GoodResponse(), GoodResponse(),
                                   &rng);
    if (v == Verdict::kWin) ++first_wins;
    if (v == Verdict::kLose) ++second_wins;
  }
  EXPECT_GT(first_wins, second_wins + 40);
}

TEST(PairwiseJudgeTest, DebiasingRemovesPositionBias) {
  // The Section III-A1 swap protocol: equal candidates should split
  // symmetrically after debiasing, even under a position-biased judge.
  const PairwiseJudge gpt4(Gpt4Profile());
  Rng rng(9);
  int first_wins = 0, second_wins = 0;
  for (int i = 0; i < 400; ++i) {
    const Verdict v =
        gpt4.CompareDebiased(Task(), GoodResponse(), GoodResponse(), &rng);
    if (v == Verdict::kWin) ++first_wins;
    if (v == Verdict::kLose) ++second_wins;
  }
  EXPECT_LT(std::abs(first_wins - second_wins), 40);
}

TEST(PairwiseJudgeTest, DebiasedKeepsClearVerdicts) {
  const PairwiseJudge judge(PandaLmProfile());
  Rng rng(11);
  int wins = 0;
  for (int i = 0; i < 100; ++i) {
    if (judge.CompareDebiased(Task(), GoodResponse(), WeakResponse(), &rng) ==
        Verdict::kWin) {
      ++wins;
    }
  }
  EXPECT_GT(wins, 95);
}

TEST(PairwiseJudgeTest, DebiasedIsOrderAntisymmetricOnAverage) {
  const PairwiseJudge judge(PandaLmProfile());
  Rng rng_a(13), rng_b(13);
  VerdictCounts forward, backward;
  for (int i = 0; i < 200; ++i) {
    forward.Add(
        judge.CompareDebiased(Task(), GoodResponse(), WeakResponse(), &rng_a));
    backward.Add(
        judge.CompareDebiased(Task(), WeakResponse(), GoodResponse(), &rng_b));
  }
  // A vs B wins should roughly equal B vs A losses.
  EXPECT_NEAR(static_cast<double>(forward.wins),
              static_cast<double>(backward.losses), 20.0);
}

TEST(PairwiseJudgeTest, ProfilesMatchPaperRoles) {
  EXPECT_EQ(PandaLmProfile().position_bias, 0.0);
  EXPECT_GT(Gpt4Profile().position_bias, 0.0);
  EXPECT_GT(PandaLmProfile().noise_stddev, Gpt4Profile().noise_stddev);
}

}  // namespace
}  // namespace judge
}  // namespace coachlm
