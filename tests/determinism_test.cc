// Cross-thread determinism contract of the execution layer: every
// corpus-scale stage must produce byte-identical output at any thread
// count, and the stages whose per-item streams predate the ExecutionContext
// refactor (coach revision, judge evaluation) must still match goldens
// captured from the pre-refactor serial implementation.

#include <gtest/gtest.h>

#include <string>

#include "coach/coach_lm.h"
#include "coach/pipeline.h"
#include "coach/trainer.h"
#include "common/execution.h"
#include "determinism_fixture.h"
#include "expert/pipeline.h"
#include "judge/pairwise_judge.h"
#include "platform/platform.h"
#include "quality/accuracy_rater.h"
#include "synth/generator.h"
#include "tuning/evaluation.h"
#include "tuning/instruction_tuner.h"
#include "tuning/model_spec.h"

namespace coachlm {
namespace {

// Goldens captured from the pre-refactor build (serial ThreadPool path)
// on the hand-written fixture of determinism_fixture.h.
constexpr uint64_t kReviseGoldenHash = 2150533821516449979ULL;
constexpr uint64_t kRespondGoldenHash = 5410964517598395273ULL;

class DeterminismTest : public ::testing::TestWithParam<size_t> {
 protected:
  size_t threads() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, DeterminismTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& param) {
                           return "threads" + std::to_string(param.param);
                         });

TEST_P(DeterminismTest, ReviseDatasetMatchesPreRefactorGolden) {
  coach::CoachConfig config;
  config.alpha = 1.0;
  const coach::CoachLm model =
      coach::CoachTrainer(config).Train(testfix::FixtureRevisions());
  const ExecutionContext exec(threads());
  coach::RevisionPassStats stats;
  const InstructionDataset revised =
      model.ReviseDataset(testfix::FixtureCorpus(), {}, &stats, exec);
  EXPECT_EQ(testfix::HashDataset(revised), kReviseGoldenHash);
  EXPECT_EQ(stats.total, 6u);
  EXPECT_EQ(stats.changed, 6u);
  EXPECT_EQ(stats.invalid_replaced, 0u);
}

TEST_P(DeterminismTest, CoachPipelineIsThreadInvariant) {
  coach::CoachConfig config;
  config.alpha = 1.0;
  const ExecutionContext exec(threads());
  const auto parallel = coach::RunCoachPipeline(
      testfix::FixtureCorpus(), testfix::FixtureRevisions(), config, exec);
  const auto serial = coach::RunCoachPipeline(
      testfix::FixtureCorpus(), testfix::FixtureRevisions(), config,
      ExecutionContext::Serial());
  EXPECT_EQ(testfix::HashDataset(parallel.revised_dataset),
            testfix::HashDataset(serial.revised_dataset));
  EXPECT_EQ(parallel.stats.leakage_skipped, serial.stats.leakage_skipped);
  EXPECT_EQ(parallel.stats.changed, serial.stats.changed);
}

TEST_P(DeterminismTest, CorpusGenerationIsThreadInvariant) {
  synth::CorpusConfig config;
  config.size = 400;
  config.seed = 42;
  synth::SynthCorpusGenerator generator(config);
  const ExecutionContext exec(threads());
  const synth::SynthCorpus parallel = generator.Generate(exec);
  const synth::SynthCorpus serial =
      generator.Generate(ExecutionContext::Serial());
  EXPECT_EQ(testfix::HashDataset(parallel.dataset),
            testfix::HashDataset(serial.dataset));
  ASSERT_EQ(parallel.defects.size(), serial.defects.size());
  for (size_t i = 0; i < parallel.defects.size(); ++i) {
    EXPECT_EQ(parallel.defects[i], serial.defects[i]) << "pair " << i;
  }
}

TEST_P(DeterminismTest, JudgeEvaluationMatchesPreRefactorGolden) {
  const ExecutionContext exec(threads());
  const tuning::TunedModel tuned = tuning::InstructionTuner().Tune(
      tuning::Llama7BBase("golden"), testfix::FixtureCorpus(), exec);
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  const auto eval = tuning::EvaluateModel(tuned, testfix::FixtureTestSet(),
                                          panda, /*seed=*/5150, exec);
  EXPECT_EQ(eval.counts.wins, 0u);
  EXPECT_EQ(eval.counts.ties, 1u);
  EXPECT_EQ(eval.counts.losses, 3u);
  // Byte-level check of the generated responses, not just the verdict
  // tally: the per-item streams must replay the pre-refactor sequence.
  uint64_t h = 1469598103934665603ULL;
  for (const InstructionPair& item : testfix::FixtureTestSet().items) {
    Rng rng = DeriveRng(5150, item.id);
    h = testfix::Fnv1a(tuned.Respond(item, &rng), h);
  }
  EXPECT_EQ(h, kRespondGoldenHash);
}

TEST_P(DeterminismTest, ExpertStudyIsThreadInvariant) {
  synth::CorpusConfig corpus_config;
  corpus_config.size = 300;
  corpus_config.seed = 7;
  const synth::SynthCorpus corpus =
      synth::SynthCorpusGenerator(corpus_config)
          .Generate(ExecutionContext::Serial());
  synth::ContentEngine engine;
  expert::RevisionStudyConfig config;
  config.sample_size = 120;
  const ExecutionContext exec(threads());
  const auto parallel =
      expert::RunRevisionStudy(corpus.dataset, engine, config, {}, exec);
  const auto serial = expert::RunRevisionStudy(corpus.dataset, engine, config,
                                               {}, ExecutionContext::Serial());
  EXPECT_EQ(parallel.revised_pairs, serial.revised_pairs);
  EXPECT_EQ(parallel.examined_after_filter, serial.examined_after_filter);
  EXPECT_EQ(parallel.person_days, serial.person_days);
  EXPECT_EQ(testfix::HashDataset(parallel.merged_dataset),
            testfix::HashDataset(serial.merged_dataset));
  ASSERT_EQ(parallel.revisions.size(), serial.revisions.size());
  for (size_t i = 0; i < parallel.revisions.size(); ++i) {
    EXPECT_EQ(parallel.revisions[i].revised.output,
              serial.revisions[i].revised.output);
  }
}

TEST_P(DeterminismTest, PlatformBatchIsThreadInvariant) {
  platform::PlatformConfig config;
  config.batch_size = 250;
  config.inference_threads = threads();
  const platform::DataPlatform parallel_platform(config);
  config.inference_threads = 1;
  const platform::DataPlatform serial_platform(config);

  size_t parallel_dropped = 0;
  size_t serial_dropped = 0;
  const InstructionDataset parallel_raw = parallel_platform.ParseWithRuleScripts(
      parallel_platform.CollectUserCases(), &parallel_dropped);
  const InstructionDataset serial_raw = serial_platform.ParseWithRuleScripts(
      serial_platform.CollectUserCases(), &serial_dropped);
  EXPECT_EQ(parallel_dropped, serial_dropped);
  EXPECT_EQ(testfix::HashDataset(parallel_raw),
            testfix::HashDataset(serial_raw));

  const auto parallel_report = parallel_platform.RunCleaningBatch(nullptr);
  const auto serial_report = serial_platform.RunCleaningBatch(nullptr);
  EXPECT_EQ(parallel_report.pairs, serial_report.pairs);
  // Exact double equality: the edit-char sum folds in batch order.
  EXPECT_EQ(parallel_report.mean_remaining_edit,
            serial_report.mean_remaining_edit);
  EXPECT_EQ(parallel_report.person_days, serial_report.person_days);
}

TEST_P(DeterminismTest, DatasetRatingIsThreadInvariant) {
  synth::CorpusConfig config;
  config.size = 300;
  config.seed = 11;
  const synth::SynthCorpus corpus = synth::SynthCorpusGenerator(config)
                                        .Generate(ExecutionContext::Serial());
  const ExecutionContext exec(threads());
  quality::AccuracyRater rater;
  const auto parallel = rater.RateDataset(corpus.dataset, exec);
  const auto serial =
      rater.RateDataset(corpus.dataset, ExecutionContext::Serial());
  // Exact double equality — the mean folds in dataset order.
  EXPECT_EQ(parallel.mean, serial.mean);
  EXPECT_EQ(parallel.fraction_above_45, serial.fraction_above_45);
  EXPECT_EQ(parallel.ratings, serial.ratings);
}

}  // namespace
}  // namespace coachlm
