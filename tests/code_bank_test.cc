#include "synth/code_bank.h"

#include <gtest/gtest.h>

#include <set>

namespace coachlm {
namespace synth {
namespace {

TEST(CodeBankTest, TasksAreComplete) {
  const auto& tasks = CodeTasks();
  EXPECT_GE(tasks.size(), 6u);
  for (const CodeTask& task : tasks) {
    EXPECT_FALSE(task.name.empty());
    EXPECT_FALSE(task.description.empty());
    EXPECT_NE(task.code.find("def "), std::string::npos) << task.name;
    EXPECT_NE(task.buggy_code.find("def "), std::string::npos);
    EXPECT_NE(task.code, task.buggy_code) << task.name;
    EXPECT_FALSE(task.bug_note.empty());
    EXPECT_GE(task.explanation.size(), 2u);
  }
}

TEST(CodeBankTest, NamesUnique) {
  std::set<std::string> names;
  for (const CodeTask& task : CodeTasks()) {
    EXPECT_TRUE(names.insert(task.name).second);
  }
}

TEST(CodeBankTest, FindByNameOrDescription) {
  const CodeTask* by_name = FindCodeTaskIn("fix this factorial bug");
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name->name, "factorial");
  const CodeTask* by_desc =
      FindCodeTaskIn("Write a function that reverses a string please");
  ASSERT_NE(by_desc, nullptr);
  EXPECT_EQ(by_desc->name, "reverse_string");
  EXPECT_EQ(FindCodeTaskIn("nothing about code"), nullptr);
}

TEST(CodeBankTest, FindInsideCodeText) {
  const CodeTask* task = FindCodeTaskIn("def is_prime(n):\n    ...");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->name, "is_prime");
}

}  // namespace
}  // namespace synth
}  // namespace coachlm
