#include "text/lexicons.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace lexicons {
namespace {

TEST(LexiconsTest, StopwordsContainCoreFunctionWords) {
  EXPECT_GT(Stopwords().count("the"), 0u);
  EXPECT_GT(Stopwords().count("and"), 0u);
  EXPECT_EQ(Stopwords().count("gravity"), 0u);
}

TEST(LexiconsTest, SpellingRepairsInvertCorruptions) {
  // COACHLM_LINT_ALLOW(determinism-unordered-serialization): each iteration asserts independently; '<<' streams into that iteration's failure message only.
  for (const auto& [good, bad] : SpellingCorruptions()) {
    auto it = SpellingRepairs().find(bad);
    ASSERT_NE(it, SpellingRepairs().end()) << bad;
    EXPECT_EQ(it->second, good);
  }
  EXPECT_EQ(SpellingCorruptions().size(), SpellingRepairs().size());
}

TEST(LexiconsTest, CorruptionsActuallyDiffer) {
  for (const auto& [good, bad] : SpellingCorruptions()) {
    EXPECT_NE(good, bad);
  }
}

TEST(LexiconsTest, NonEmptyLists) {
  EXPECT_FALSE(PolitenessMarkers().empty());
  EXPECT_FALSE(HedgeWords().empty());
  EXPECT_FALSE(UnsafeTerms().empty());
  EXPECT_FALSE(ExplanationMarkers().empty());
  EXPECT_FALSE(AmbiguityFillers().empty());
  EXPECT_FALSE(MechanicalOpeners().empty());
}

TEST(LexiconsTest, ExplanationMarkersAreLowerCase) {
  // Richness matching lower-cases the text, so markers must be lower-case.
  for (const std::string& marker : ExplanationMarkers()) {
    for (char c : marker) {
      EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)))
          << marker;
    }
  }
}

}  // namespace
}  // namespace lexicons
}  // namespace coachlm
