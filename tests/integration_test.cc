// End-to-end integration of the full Fig. 2 pipeline at reduced scale:
// synthetic corpus -> expert revision study -> coach instruction tuning ->
// dataset revision -> instruction tuning -> judged win rates.

#include <gtest/gtest.h>

#include "coach/pipeline.h"
#include "expert/pipeline.h"
#include "judge/pairwise_judge.h"
#include "quality/accuracy_rater.h"
#include "synth/generator.h"
#include "testsets/testset.h"
#include "tuning/evaluation.h"
#include "tuning/model_zoo.h"

namespace coachlm {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig corpus_config;
    corpus_config.size = 5000;
    corpus_config.seed = 42;
    synth::SynthCorpusGenerator generator(corpus_config);
    corpus_ = new synth::SynthCorpus(generator.Generate());

    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 1200;
    study_ = new expert::RevisionStudyResult(expert::RunRevisionStudy(
        corpus_->dataset, generator.engine(), study_config));

    coach::CoachConfig coach_config;
    coach_config.alpha = 0.3;
    coach_ = new coach::CoachPipelineResult(coach::RunCoachPipeline(
        corpus_->dataset, study_->revisions, coach_config));
  }
  static void TearDownTestSuite() {
    delete coach_;
    delete study_;
    delete corpus_;
  }

  static synth::SynthCorpus* corpus_;
  static expert::RevisionStudyResult* study_;
  static coach::CoachPipelineResult* coach_;
};

synth::SynthCorpus* IntegrationTest::corpus_ = nullptr;
expert::RevisionStudyResult* IntegrationTest::study_ = nullptr;
coach::CoachPipelineResult* IntegrationTest::coach_ = nullptr;

TEST_F(IntegrationTest, Figure4QualityMovement) {
  quality::AccuracyRater rater;
  const auto before = rater.RateDataset(corpus_->dataset);
  const auto after = rater.RateDataset(coach_->revised_dataset);
  // Paper: 3.95 -> 4.31 mean; 17.7% -> 78.9% above 4.5. Shape check with
  // tolerance for the reduced scale.
  EXPECT_NEAR(before.mean, 3.95, 0.3);
  EXPECT_NEAR(before.fraction_above_45, 0.177, 0.07);
  EXPECT_GT(after.mean, before.mean + 0.25);
  EXPECT_GT(after.fraction_above_45, 0.55);
}

TEST_F(IntegrationTest, TableNineOrderingAmongKeyBaselines) {
  tuning::ZooInputs inputs;
  inputs.original = &corpus_->dataset;
  inputs.human_merged = &study_->merged_dataset;
  inputs.coach_revised = &coach_->revised_dataset;
  tuning::InstructionTuner tuner;
  const auto zoo = tuning::BuildBaselineGroup(inputs, tuner);
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  const testsets::TestSet set = testsets::CoachLm150();

  std::map<std::string, double> wr1;
  for (const auto& entry : zoo) {
    wr1[entry.model.spec().name] =
        tuning::EvaluateModel(entry.model, set, panda).rates.wr1;
  }
  // The paper's headline ordering: Alpaca-CoachLM beats every baseline,
  // and Alpaca-human beats plain Alpaca.
  EXPECT_GT(wr1.at("Alpaca-CoachLM"), wr1.at("Alpaca") + 0.03);
  EXPECT_GT(wr1.at("Alpaca-CoachLM"), wr1.at("Alpaca-cleaned"));
  EXPECT_GT(wr1.at("Alpaca-CoachLM"), wr1.at("AlpaGasus"));
  EXPECT_GT(wr1.at("Alpaca-CoachLM"), wr1.at("Vicuna-7b"));
  EXPECT_GE(wr1.at("Alpaca-human"), wr1.at("Alpaca") - 0.02);
}

TEST_F(IntegrationTest, AlphaSweepPeaksInTheInterior) {
  // Fig. 5(a): no training (alpha 0) and full noisy training (alpha 1)
  // both underperform a mid alpha on revised-dataset quality.
  quality::AccuracyRater rater;
  std::map<double, double> quality_by_alpha;
  for (double alpha : {0.0, 0.3, 1.0}) {
    coach::CoachConfig config;
    config.alpha = alpha;
    const auto result = coach::RunCoachPipeline(corpus_->dataset,
                                                study_->revisions, config);
    quality_by_alpha[alpha] =
        rater.RateDataset(result.revised_dataset).mean;
  }
  EXPECT_GT(quality_by_alpha[0.3], quality_by_alpha[0.0] + 0.1);
  EXPECT_GE(quality_by_alpha[0.3], quality_by_alpha[1.0] - 0.02);
}

TEST_F(IntegrationTest, BackboneOrderingOnRevisedQuality) {
  // Table XI: stronger backbones yield better coaches (alpha fixed at 1).
  quality::AccuracyRater rater;
  std::map<std::string, double> by_backbone;
  for (const lm::BackboneProfile& profile :
       {lm::Llama7B(), lm::ChatGlm6B(), lm::ChatGlm26B()}) {
    coach::CoachConfig config;
    config.alpha = 1.0;
    config.backbone = profile;
    const auto result = coach::RunCoachPipeline(corpus_->dataset,
                                                study_->revisions, config);
    by_backbone[profile.name] =
        rater.RateDataset(result.revised_dataset).mean;
  }
  EXPECT_GT(by_backbone.at("ChatGLM2-6b"), by_backbone.at("LLaMA-7b"));
  EXPECT_GE(by_backbone.at("ChatGLM2-6b"), by_backbone.at("ChatGLM-6b"));
}

}  // namespace
}  // namespace coachlm
