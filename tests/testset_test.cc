#include "testsets/testset.h"

#include <gtest/gtest.h>

#include <set>

#include "quality/criteria.h"

namespace coachlm {
namespace testsets {
namespace {

TEST(TestSetTest, TableSixShapes) {
  const TestSet coach = CoachLm150();
  EXPECT_EQ(coach.items.size(), 150u);
  EXPECT_EQ(coach.num_categories, 42u);
  EXPECT_EQ(coach.reference_source, "Human");

  const TestSet panda = PandaLm170();
  EXPECT_EQ(panda.items.size(), 170u);
  EXPECT_EQ(panda.num_categories, 11u);
  EXPECT_EQ(panda.reference_source, "ChatGPT");

  const TestSet vicuna = Vicuna80();
  EXPECT_EQ(vicuna.items.size(), 80u);
  EXPECT_EQ(vicuna.num_categories, 9u);
  EXPECT_EQ(vicuna.reference_source, "Bard");

  const TestSet self_instruct = SelfInstruct252();
  EXPECT_EQ(self_instruct.items.size(), 252u);
  EXPECT_EQ(self_instruct.num_categories, 15u);
  EXPECT_EQ(self_instruct.reference_source, "Human");
}

TEST(TestSetTest, CoachLm150CoversAllCategories) {
  const TestSet set = CoachLm150();
  std::set<Category> seen;
  for (const InstructionPair& item : set.items) seen.insert(item.category);
  EXPECT_EQ(seen.size(), kNumCategories);
}

TEST(TestSetTest, ItemsAreWellFormedWithReferences) {
  for (const TestSet& set : AllTestSets()) {
    for (const InstructionPair& item : set.items) {
      EXPECT_TRUE(item.IsWellFormed()) << set.name;
    }
  }
}

TEST(TestSetTest, ReferencesAreHighQuality) {
  for (const TestSet& set : AllTestSets()) {
    double total = 0;
    for (const InstructionPair& item : set.items) {
      total += quality::ResponseScorer().Score(item).score;
    }
    EXPECT_GT(total / set.items.size(), 82.0) << set.name;
  }
}

TEST(TestSetTest, ReferenceTiersOrderDifficulty) {
  // Vicuna80's Bard references outclass PandaLM170's ChatGPT references —
  // the source of the Table IX difficulty gap.
  auto mean_score = [](const TestSet& set) {
    double total = 0;
    for (const InstructionPair& item : set.items) {
      total += quality::ResponseScorer().Score(item).score;
    }
    return total / static_cast<double>(set.items.size());
  };
  EXPECT_GT(mean_score(Vicuna80()), mean_score(PandaLm170()) + 2.0);
}

TEST(TestSetTest, BuildersAreDeterministic) {
  const TestSet a = CoachLm150();
  const TestSet b = CoachLm150();
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i], b.items[i]);
  }
}

TEST(TestSetTest, CustomSpecRoundRobinsCategories) {
  TestSetSpec spec;
  spec.name = "tiny";
  spec.size = 6;
  spec.categories = {Category::kGeneralQa, Category::kCoding};
  const TestSet set = BuildTestSet(spec);
  ASSERT_EQ(set.items.size(), 6u);
  EXPECT_EQ(set.items[0].category, Category::kGeneralQa);
  EXPECT_EQ(set.items[1].category, Category::kCoding);
  EXPECT_EQ(set.items[2].category, Category::kGeneralQa);
}

}  // namespace
}  // namespace testsets
}  // namespace coachlm
