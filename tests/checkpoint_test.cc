#include "common/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/execution.h"
#include "json/jsonl.h"

namespace coachlm {
namespace {

namespace fs = std::filesystem;

// Fresh, empty scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(AtomicWriteFileTest, WritesAndOverwritesWithoutLeavingTemp) {
  ScratchDir dir("coachlm_atomic_write_test");
  const std::string path = dir.path() + "/out.json";
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  const auto text = json::ReadFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicWriteFileTest, FailsOnUnwritableDirectory) {
  EXPECT_FALSE(
      AtomicWriteFile("/nonexistent/dir/file.json", "x").ok());
}

TEST(ConfigFingerprintTest, StableAndSensitiveToInput) {
  const std::string a = ConfigFingerprint("seed=42,size=100");
  EXPECT_EQ(a, ConfigFingerprint("seed=42,size=100"));
  EXPECT_NE(a, ConfigFingerprint("seed=43,size=100"));
  EXPECT_EQ(a.size(), 16u);  // hex-encoded 64-bit hash
}

TEST(StageCheckpointerTest, EmptyDirDisablesEverything) {
  StageCheckpointer checkpoint("", "stage", "fp");
  EXPECT_FALSE(checkpoint.enabled());
  EXPECT_TRUE(checkpoint.Resume().empty());
  EXPECT_TRUE(checkpoint.Commit(2, {"a", "b"}).ok());
  EXPECT_TRUE(checkpoint.Finish().ok());
}

TEST(StageCheckpointerTest, CommitThenResumeRestoresLinesInOrder) {
  ScratchDir dir("coachlm_ckpt_roundtrip_test");
  {
    StageCheckpointer writer(dir.path(), "revise", "fp1", 4);
    EXPECT_TRUE(writer.Resume().empty());  // nothing to resume yet
    ASSERT_TRUE(writer.Commit(2, {"{\"i\":0}", "{\"i\":1}"}).ok());
    ASSERT_TRUE(writer.Commit(3, {"{\"i\":2}"}).ok());
  }
  StageCheckpointer reader(dir.path(), "revise", "fp1", 4);
  const std::vector<std::string> lines = reader.Resume();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"i\":0}");
  EXPECT_EQ(lines[2], "{\"i\":2}");
}

TEST(StageCheckpointerTest, ResumeRejectsMismatchedFingerprint) {
  ScratchDir dir("coachlm_ckpt_fp_test");
  {
    StageCheckpointer writer(dir.path(), "revise", "fp1");
    ASSERT_TRUE(writer.Commit(1, {"{\"i\":0}"}).ok());
  }
  StageCheckpointer other_config(dir.path(), "revise", "fp2");
  EXPECT_TRUE(other_config.Resume().empty());
  StageCheckpointer other_stage(dir.path(), "generate", "fp1");
  EXPECT_TRUE(other_stage.Resume().empty());
}

TEST(StageCheckpointerTest, TornTailBeyondManifestIsDiscarded) {
  ScratchDir dir("coachlm_ckpt_torn_test");
  StageCheckpointer writer(dir.path(), "revise", "fp1");
  ASSERT_TRUE(writer.Commit(2, {"{\"i\":0}", "{\"i\":1}"}).ok());
  {
    // Simulate a crash mid-append: payload bytes past the manifest.
    std::ofstream out(writer.payload_path(),
                      std::ios::binary | std::ios::app);
    out << "{\"i\":2}\n{\"i\"";
  }
  StageCheckpointer reader(dir.path(), "revise", "fp1");
  const std::vector<std::string> lines = reader.Resume();
  ASSERT_EQ(lines.size(), 2u);  // manifest is authoritative
  EXPECT_EQ(lines[1], "{\"i\":1}");
}

TEST(StageCheckpointerTest, ResumeRejectsPayloadShorterThanManifest) {
  ScratchDir dir("coachlm_ckpt_short_test");
  StageCheckpointer writer(dir.path(), "revise", "fp1");
  ASSERT_TRUE(writer.Commit(2, {"{\"i\":0}", "{\"i\":1}"}).ok());
  {
    std::ofstream out(writer.payload_path(),
                      std::ios::binary | std::ios::trunc);
    out << "{\"i\":0}\n";  // fewer bytes than the manifest promises
  }
  StageCheckpointer reader(dir.path(), "revise", "fp1");
  EXPECT_TRUE(reader.Resume().empty());
}

TEST(StageCheckpointerTest, ResumedCommitAppendsAfterRestoredPayload) {
  ScratchDir dir("coachlm_ckpt_append_test");
  {
    StageCheckpointer writer(dir.path(), "revise", "fp1");
    ASSERT_TRUE(writer.Commit(1, {"{\"i\":0}"}).ok());
  }
  {
    StageCheckpointer resumed(dir.path(), "revise", "fp1");
    ASSERT_EQ(resumed.Resume().size(), 1u);
    ASSERT_TRUE(resumed.Commit(2, {"{\"i\":1}"}).ok());
  }
  StageCheckpointer reader(dir.path(), "revise", "fp1");
  const std::vector<std::string> lines = reader.Resume();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"i\":0}");
  EXPECT_EQ(lines[1], "{\"i\":1}");
}

TEST(StageCheckpointerTest, FreshCommitTruncatesStalePayload) {
  ScratchDir dir("coachlm_ckpt_stale_test");
  {
    StageCheckpointer writer(dir.path(), "revise", "fp1");
    ASSERT_TRUE(writer.Commit(2, {"{\"i\":0}", "{\"i\":1}"}).ok());
  }
  {
    // A run that does NOT resume (e.g. fingerprint changed) must not
    // leave old payload bytes in front of its own.
    StageCheckpointer fresh(dir.path(), "revise", "fp2");
    EXPECT_TRUE(fresh.Resume().empty());
    ASSERT_TRUE(fresh.Commit(1, {"{\"j\":9}"}).ok());
  }
  StageCheckpointer reader(dir.path(), "revise", "fp2");
  const std::vector<std::string> lines = reader.Resume();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"j\":9}");
}

TEST(StageCheckpointerTest, FinishRemovesBothFiles) {
  ScratchDir dir("coachlm_ckpt_finish_test");
  StageCheckpointer checkpoint(dir.path(), "revise", "fp1");
  ASSERT_TRUE(checkpoint.Commit(1, {"{\"i\":0}"}).ok());
  ASSERT_TRUE(fs::exists(checkpoint.manifest_path()));
  ASSERT_TRUE(fs::exists(checkpoint.payload_path()));
  ASSERT_TRUE(checkpoint.Finish().ok());
  EXPECT_FALSE(fs::exists(checkpoint.manifest_path()));
  EXPECT_FALSE(fs::exists(checkpoint.payload_path()));
}

int ParseRecordLine(const std::string& line) {
  return std::stoi(line);
}

TEST(RunCheckpointedLoopTest, FreshRunComputesEverythingAndJournals) {
  ScratchDir dir("coachlm_loop_fresh_test");
  StageCheckpointer checkpoint(dir.path(), "loop", "fp1", /*interval=*/3);
  ExecutionContext exec(4);
  std::vector<int> records(10, -1);
  std::atomic<size_t> computed{0};
  const size_t restored = RunCheckpointedLoop(
      &checkpoint, exec, &records,
      [&](size_t i) {
        computed.fetch_add(1);
        return static_cast<int>(i * i);
      },
      [](int r) { return std::to_string(r); },
      [](const std::string& line, int* r) {
        *r = ParseRecordLine(line);
        return true;
      });
  EXPECT_EQ(restored, 0u);
  EXPECT_EQ(computed.load(), 10u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], static_cast<int>(i * i));
  }
  // The journal covers every item, in interval-sized commits.
  StageCheckpointer reader(dir.path(), "loop", "fp1", 3);
  EXPECT_EQ(reader.Resume().size(), 10u);
}

TEST(RunCheckpointedLoopTest, ResumeSkipsRestoredPrefix) {
  ScratchDir dir("coachlm_loop_resume_test");
  {
    // Journal the first 6 items, as a killed run would have.
    StageCheckpointer partial(dir.path(), "loop", "fp1", 3);
    ASSERT_TRUE(partial.Commit(3, {"0", "1", "4"}).ok());
    ASSERT_TRUE(partial.Commit(6, {"9", "16", "25"}).ok());
  }
  StageCheckpointer checkpoint(dir.path(), "loop", "fp1", 3);
  ExecutionContext exec(2);
  std::vector<int> records(10, -1);
  std::atomic<size_t> computed{0};
  const size_t restored = RunCheckpointedLoop(
      &checkpoint, exec, &records,
      [&](size_t i) {
        computed.fetch_add(1);
        return static_cast<int>(i * i);
      },
      [](int r) { return std::to_string(r); },
      [](const std::string& line, int* r) {
        *r = ParseRecordLine(line);
        return true;
      });
  EXPECT_EQ(restored, 6u);
  EXPECT_EQ(computed.load(), 4u);  // only items 6..9 recomputed
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], static_cast<int>(i * i)) << "index " << i;
  }
}

TEST(RunCheckpointedLoopTest, UndecodableJournalRestartsFromScratch) {
  ScratchDir dir("coachlm_loop_baddecode_test");
  {
    StageCheckpointer partial(dir.path(), "loop", "fp1", 4);
    ASSERT_TRUE(partial.Commit(2, {"0", "\"not-a-number\""}).ok());
  }
  StageCheckpointer checkpoint(dir.path(), "loop", "fp1", 4);
  ExecutionContext exec(1);
  std::vector<int> records(5, -1);
  std::atomic<size_t> computed{0};
  const size_t restored = RunCheckpointedLoop(
      &checkpoint, exec, &records,
      [&](size_t i) {
        computed.fetch_add(1);
        return static_cast<int>(i);
      },
      [](int r) { return std::to_string(r); },
      [](const std::string& line, int* r) {
        if (line.empty() || !isdigit(static_cast<unsigned char>(line[0]))) {
          return false;
        }
        *r = ParseRecordLine(line);
        return true;
      });
  EXPECT_EQ(restored, 0u);
  EXPECT_EQ(computed.load(), 5u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], static_cast<int>(i));
  }
}

TEST(RunCheckpointedLoopTest, OversizedJournalRestartsFromScratch) {
  ScratchDir dir("coachlm_loop_oversize_test");
  {
    StageCheckpointer partial(dir.path(), "loop", "fp1", 8);
    ASSERT_TRUE(partial.Commit(6, {"0", "1", "2", "3", "4", "5"}).ok());
  }
  StageCheckpointer checkpoint(dir.path(), "loop", "fp1", 8);
  ExecutionContext exec(1);
  std::vector<int> records(4, -1);  // run over FEWER items than journaled
  std::atomic<size_t> computed{0};
  const size_t restored = RunCheckpointedLoop(
      &checkpoint, exec, &records,
      [&](size_t i) {
        computed.fetch_add(1);
        return static_cast<int>(i);
      },
      [](int r) { return std::to_string(r); },
      [](const std::string& line, int* r) {
        *r = ParseRecordLine(line);
        return true;
      });
  EXPECT_EQ(restored, 0u);
  EXPECT_EQ(computed.load(), 4u);
}

}  // namespace
}  // namespace coachlm
