#include "data/revision_io.h"

#include "json/jsonl.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace coachlm {
namespace {

std::string TempPath() {
  return (std::filesystem::temp_directory_path() / "coachlm_revisions.jsonl")
      .string();
}

RevisionDataset Sample() {
  RevisionDataset records;
  for (int i = 0; i < 3; ++i) {
    RevisionRecord record;
    record.original.id = static_cast<uint64_t>(i + 1);
    record.original.category = Category::kSummarization;
    record.original.instruction = "Summarize item " + std::to_string(i) + ".";
    record.original.output = "Short.";
    record.revised = record.original;
    record.revised.output = "A much longer, richer summary.\nWith lines.";
    record.RecomputeDerived();
    records.push_back(std::move(record));
  }
  return records;
}

TEST(RevisionIoTest, RoundTripPreservesRecords) {
  const std::string path = TempPath();
  const RevisionDataset records = Sample();
  ASSERT_TRUE(SaveRevisions(path, records).ok());
  auto loaded = LoadRevisions(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*loaded)[i].original, records[i].original);
    EXPECT_EQ((*loaded)[i].revised, records[i].revised);
    // Derived fields recomputed on load.
    EXPECT_EQ((*loaded)[i].char_edit_distance,
              records[i].char_edit_distance);
    EXPECT_TRUE((*loaded)[i].response_changed);
  }
  std::remove(path.c_str());
}

TEST(RevisionIoTest, EmptyDatasetRoundTrips) {
  const std::string path = TempPath();
  ASSERT_TRUE(SaveRevisions(path, {}).ok());
  auto loaded = LoadRevisions(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(RevisionIoTest, LoadFailsOnMissingOrMalformed) {
  EXPECT_FALSE(LoadRevisions("/no/such/file.jsonl").ok());
  const std::string path = TempPath();
  ASSERT_TRUE(json::WriteFile(path, "{\"original\": 3}\n").ok());
  EXPECT_FALSE(LoadRevisions(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace coachlm
