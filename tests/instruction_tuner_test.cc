#include "tuning/instruction_tuner.h"

#include <gtest/gtest.h>

#include "synth/generator.h"

namespace coachlm {
namespace tuning {
namespace {

synth::SynthCorpus SmallCorpus(double deficiency = 0.468) {
  synth::CorpusConfig config;
  config.size = 2000;
  config.seed = 42;
  config.deficiency_rate = deficiency;
  return synth::SynthCorpusGenerator(config).Generate();
}

TEST(InstructionTunerTest, AlignmentCoversSeenCategories) {
  const auto corpus = SmallCorpus();
  const AlignmentProfile profile =
      InstructionTuner().MeasureAlignment(corpus.dataset);
  EXPECT_GT(profile.global_quality, 0.5);
  EXPECT_LT(profile.global_quality, 1.0);
  EXPECT_EQ(profile.per_category.size(), kNumCategories);
  for (const auto& [category, alignment] : profile.per_category) {
    EXPECT_GT(alignment.quality, 0.0);
    EXPECT_LE(alignment.quality, 1.0);
    EXPECT_GT(alignment.coverage, 0.0);
    EXPECT_LT(alignment.coverage, 1.0);
  }
}

TEST(InstructionTunerTest, CleanerDataScoresHigherAlignment) {
  const auto noisy = SmallCorpus(0.7);
  const auto cleanish = SmallCorpus(0.2);
  InstructionTuner tuner;
  EXPECT_GT(tuner.MeasureAlignment(cleanish.dataset).global_quality,
            tuner.MeasureAlignment(noisy.dataset).global_quality);
}

TEST(InstructionTunerTest, CoverageSaturatesWithRelativeCount) {
  const auto corpus = SmallCorpus();
  const AlignmentProfile profile =
      InstructionTuner().MeasureAlignment(corpus.dataset);
  // Sparse code categories have lower coverage than frequent ones.
  EXPECT_LT(profile.per_category.at(Category::kCoding).coverage,
            profile.per_category.at(Category::kGeneralQa).coverage);
}

TEST(InstructionTunerTest, EmptyDatasetMeasuresZero) {
  const AlignmentProfile profile =
      InstructionTuner().MeasureAlignment(InstructionDataset());
  EXPECT_EQ(profile.global_quality, 0.0);
  EXPECT_TRUE(profile.per_category.empty());
}

TEST(InstructionTunerTest, TuneWiresSpecAndAlignment) {
  const auto corpus = SmallCorpus();
  const TunedModel model =
      InstructionTuner().Tune(Llama7BBase("Alpaca"), corpus.dataset);
  EXPECT_EQ(model.spec().name, "Alpaca");
  EXPECT_GT(model.alignment().global_quality, 0.0);
}

TEST(InstructionTunerTest, FixedCoverageKRespected) {
  const auto corpus = SmallCorpus();
  const AlignmentProfile profile =
      InstructionTuner(1000.0).MeasureAlignment(corpus.dataset);
  // With k = 1000 and ~48 pairs per category, coverage is low everywhere.
  for (const auto& [category, alignment] : profile.per_category) {
    EXPECT_LT(alignment.coverage, 0.5);
  }
}

}  // namespace
}  // namespace tuning
}  // namespace coachlm
