#include "json/jsonl.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace coachlm {
namespace json {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(JsonlTest, ParseLinesBasic) {
  auto r = ParseLines("{\"a\":1}\n{\"a\":2}\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[1].At("a").AsInt(), 2);
}

TEST(JsonlTest, SkipsBlankAndCrLfLines) {
  auto r = ParseLines("{\"a\":1}\r\n\n  \n{\"a\":2}\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(JsonlTest, StrictModeFailsOnBadLine) {
  auto r = ParseLines("{\"a\":1}\nnot json\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(JsonlTest, TolerantModeCountsInvalid) {
  size_t invalid = 0;
  auto r = ParseLines("{\"a\":1}\nbroken\n{\"a\":3}\n", true, &invalid);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(invalid, 1u);
}

TEST(JsonlTest, StrictModeReportsTornFinalLineWithOffset) {
  // A final line without its newline that fails to parse is a crash
  // artifact: strict mode must say so, with the byte offset of the tear.
  const std::string text = "{\"a\":1}\n{\"a\":2}\n{\"a\":";
  auto r = ParseLines(text);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("truncated final line"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("byte offset 16"), std::string::npos);
}

TEST(JsonlTest, RecoverableModeReturnsIntactPrefix) {
  const std::string text = "{\"a\":1}\n{\"a\":2}\n{\"a\":";
  ParseLinesInfo info;
  auto r = ParseLinesRecoverable(text, &info);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_TRUE(info.truncated());
  EXPECT_EQ(info.truncated_offset, 16u);
}

TEST(JsonlTest, RecoverableModeCleanDocumentNotTruncated) {
  ParseLinesInfo info;
  auto r = ParseLinesRecoverable("{\"a\":1}\n{\"a\":2}\n", &info);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_FALSE(info.truncated());
}

TEST(JsonlTest, RecoverableModeAcceptsUnterminatedValidFinalLine) {
  // A valid final line merely missing its newline parses fine and is not
  // a tear.
  ParseLinesInfo info;
  auto r = ParseLinesRecoverable("{\"a\":1}\n{\"a\":2}", &info);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_FALSE(info.truncated());
}

TEST(JsonlTest, RecoverableModeStillFailsOnTerminatedBadLine) {
  // A malformed line *with* its newline is corruption, not a torn tail.
  ParseLinesInfo info;
  EXPECT_FALSE(ParseLinesRecoverable("broken\n{\"a\":1}\n", &info).ok());
  EXPECT_FALSE(ParseLinesRecoverable("{\"a\":1}\nbroken\n", &info).ok());
}

TEST(JsonlTest, LoadJsonlRecoverableRoundTrip) {
  const std::string path = TempPath("coachlm_jsonl_torn.jsonl");
  ASSERT_TRUE(WriteFile(path, "{\"id\":1}\n{\"id\":2}\n{\"id\"").ok());
  ParseLinesInfo info;
  auto loaded = LoadJsonlRecoverable(path, &info);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(info.truncated());
  EXPECT_EQ(info.truncated_offset, 18u);
  std::remove(path.c_str());
}

TEST(JsonlTest, FileRoundTrip) {
  const std::string path = TempPath("coachlm_jsonl_test.jsonl");
  std::vector<Value> values;
  Object o1;
  o1["id"] = Value(1);
  values.push_back(Value(std::move(o1)));
  Object o2;
  o2["id"] = Value(2);
  o2["text"] = Value("multi\nline");
  values.push_back(Value(std::move(o2)));
  ASSERT_TRUE(SaveJsonl(path, values).ok());

  auto loaded = LoadJsonl(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[1].At("text").AsString(), "multi\nline");
  std::remove(path.c_str());
}

TEST(JsonlTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFile("/nonexistent/dir/file.json").ok());
  EXPECT_FALSE(LoadJsonl("/nonexistent/dir/file.jsonl").ok());
}

TEST(JsonlTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteFile("/nonexistent/dir/file.json", "x").ok());
}

}  // namespace
}  // namespace json
}  // namespace coachlm
