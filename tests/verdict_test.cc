#include "judge/verdict.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace judge {
namespace {

TEST(VerdictTest, FlipSemantics) {
  EXPECT_EQ(Flip(Verdict::kWin), Verdict::kLose);
  EXPECT_EQ(Flip(Verdict::kLose), Verdict::kWin);
  EXPECT_EQ(Flip(Verdict::kTie), Verdict::kTie);
}

TEST(VerdictTest, Names) {
  EXPECT_EQ(VerdictName(Verdict::kWin), "win");
  EXPECT_EQ(VerdictName(Verdict::kTie), "tie");
  EXPECT_EQ(VerdictName(Verdict::kLose), "lose");
}

TEST(VerdictTest, CountsAccumulate) {
  VerdictCounts counts;
  counts.Add(Verdict::kWin);
  counts.Add(Verdict::kWin);
  counts.Add(Verdict::kTie);
  counts.Add(Verdict::kLose);
  EXPECT_EQ(counts.wins, 2u);
  EXPECT_EQ(counts.ties, 1u);
  EXPECT_EQ(counts.losses, 1u);
  EXPECT_EQ(counts.Total(), 4u);
}

TEST(VerdictTest, WinRateFormulas) {
  // Paper formulas: WR1 = (w + 0.5t)/all, WR2 = w/(all - t),
  // QS = (w + t)/all.
  VerdictCounts counts;
  counts.wins = 6;
  counts.ties = 2;
  counts.losses = 2;
  const WinRates rates = ComputeWinRates(counts);
  EXPECT_DOUBLE_EQ(rates.wr1, 0.7);
  EXPECT_DOUBLE_EQ(rates.wr2, 0.75);
  EXPECT_DOUBLE_EQ(rates.qs, 0.8);
}

TEST(VerdictTest, WinRatesEdgeCases) {
  WinRates empty = ComputeWinRates(VerdictCounts{});
  EXPECT_EQ(empty.wr1, 0.0);
  EXPECT_EQ(empty.wr2, 0.0);
  EXPECT_EQ(empty.qs, 0.0);
  VerdictCounts all_tie;
  all_tie.ties = 5;
  const WinRates rates = ComputeWinRates(all_tie);
  EXPECT_DOUBLE_EQ(rates.wr1, 0.5);
  EXPECT_DOUBLE_EQ(rates.wr2, 0.0);  // no decided cases
  EXPECT_DOUBLE_EQ(rates.qs, 1.0);
}

TEST(VerdictTest, WinRateOrderingInvariant) {
  // QS >= WR1 >= ... always, since ties count fully for QS and half for
  // WR1.
  for (size_t w = 0; w <= 4; ++w) {
    for (size_t t = 0; t <= 4; ++t) {
      for (size_t l = 1; l <= 4; ++l) {
        VerdictCounts c;
        c.wins = w;
        c.ties = t;
        c.losses = l;
        const WinRates r = ComputeWinRates(c);
        EXPECT_GE(r.qs, r.wr1 - 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace judge
}  // namespace coachlm
