#include "coach/verifier.h"

#include "coach/coach_config.h"

#include <gtest/gtest.h>

#include "synth/topic_bank.h"

namespace coachlm {
namespace coach {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : backbone_(lm::ChatGlm26B()), verifier_(&backbone_) {}
  lm::BackboneModel backbone_;
  ExpansionVerifier verifier_;
};

TEST_F(VerifierTest, AcceptsGroundedFluentExpansion) {
  const synth::Topic* gravity = synth::FindTopicIn("gravity");
  ASSERT_NE(gravity, nullptr);
  VerifierStats stats;
  const auto out = verifier_.Verify("Explain gravity to a beginner.",
                                    gravity->details[0], &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, gravity->details[0]);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(VerifierTest, RejectsUngroundedExpansion) {
  // Chess content offered for a gravity question is the hallucination
  // signature.
  const synth::Topic* chess = synth::FindTopicIn("chess strategy");
  ASSERT_NE(chess, nullptr);
  VerifierStats stats;
  const auto out = verifier_.Verify("Explain gravity to a beginner.",
                                    chess->details[0], &stats);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(stats.rejected, 1u);
}

TEST_F(VerifierTest, RepairsDisfluentExpansion) {
  const synth::Topic* gravity = synth::FindTopicIn("gravity");
  ASSERT_NE(gravity, nullptr);
  // A fluency slip the backbone itself would produce.
  std::string slipped = gravity->details[0];
  slipped[0] = static_cast<char>(std::tolower(slipped[0]));
  VerifierStats stats;
  const auto out = verifier_.Verify("Explain gravity please.", slipped,
                                    &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, gravity->details[0]);  // restored casing
  EXPECT_EQ(stats.repaired, 1u);
}

TEST_F(VerifierTest, StatsAccumulateAcrossCalls) {
  const synth::Topic* gravity = synth::FindTopicIn("gravity");
  VerifierStats stats;
  verifier_.Verify("Explain gravity.", gravity->details[0], &stats);
  verifier_.Verify("Explain gravity.", gravity->details[1], &stats);
  EXPECT_EQ(stats.checked, 2u);
}

TEST_F(VerifierTest, VerifiedPipelineNeverScoresWorse) {
  // Enabling verification must not hurt: identical config except the
  // flag, compared on revised-quality.
  // (Covered at pipeline scale by bench_ablation_verifier; here we check
  // the flag plumbs through CoachConfig.)
  CoachConfig config;
  EXPECT_FALSE(config.verify_expansions);
  config.verify_expansions = true;
  EXPECT_TRUE(config.verify_expansions);
}

}  // namespace
}  // namespace coach
}  // namespace coachlm
