// Hostile-input hardening: every adversarial artifact — nesting bombs,
// oversized records, torn UTF-8, embedded NULs, duplicate keys, 1e999 —
// must come back as a *typed* Status (never a crash, hang, or unbounded
// allocation), in both strict parses and recoverable JSONL modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/runtime.h"
#include "json/json.h"
#include "json/jsonl.h"
#include "json/parse_limits.h"
#include "platform/platform.h"

namespace coachlm {
namespace {

namespace fs = std::filesystem;

json::ParseLimits Hardened() { return json::ParseLimits(); }

std::string Nest(size_t depth) {
  std::string doc;
  doc.reserve(depth * 2 + 4);
  for (size_t i = 0; i < depth; ++i) doc += '[';
  doc += '1';
  for (size_t i = 0; i < depth; ++i) doc += ']';
  return doc;
}

TEST(AdversarialParseTest, NestingBombIsResourceExhausted) {
  // 64 deep: comfortably beyond the hardened default of 32, far below any
  // stack-overflow risk (the parser is iterative).
  const auto parsed = json::Parse(Nest(64), Hardened());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("max_depth"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos);
}

TEST(AdversarialParseTest, MassiveNestingBombStaysIterative) {
  // A million levels would overflow any recursive parser's stack long
  // before the depth check; the iterative parser rejects it at frame 32.
  const auto parsed = json::Parse(Nest(1u << 20), Hardened());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialParseTest, DepthWithinLimitParses) {
  json::ParseLimits limits;
  limits.max_depth = 70;
  EXPECT_TRUE(json::Parse(Nest(64), limits).ok());
}

TEST(AdversarialParseTest, NonFiniteNumberIsOutOfRange) {
  const auto parsed = json::Parse("[1e999]", Hardened());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kOutOfRange);

  json::ParseLimits lenient;
  lenient.allow_nonfinite_numbers = true;
  EXPECT_TRUE(json::Parse("[1e999]", lenient).ok());
}

TEST(AdversarialParseTest, EmbeddedNulEscapeIsInvalidArgument) {
  const auto parsed = json::Parse("\"a\\u0000b\"", Hardened());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);

  json::ParseLimits lenient;
  lenient.allow_embedded_nul = true;
  const auto allowed = json::Parse("\"a\\u0000b\"", lenient);
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed->AsString().size(), 3u);
  EXPECT_EQ(allowed->AsString()[1], '\0');
}

TEST(AdversarialParseTest, RawControlByteStaysParseError) {
  const std::string doc = std::string("\"a") + '\0' + "b\"";
  const auto parsed = json::Parse(doc, Hardened());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(AdversarialParseTest, DuplicateKeysRejected) {
  const auto parsed = json::Parse("{\"k\":1,\"k\":2}", Hardened());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("duplicate"), std::string::npos);

  json::ParseLimits lenient;
  lenient.allow_duplicate_keys = true;
  const auto allowed = json::Parse("{\"k\":1,\"k\":2}", lenient);
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed->At("k").AsNumber(), 2.0);  // last binding wins
}

TEST(AdversarialParseTest, TornUtf8StrictRejectsWithOffset) {
  // 0xE4 opens a 3-byte sequence that never completes.
  const std::string doc = "\"abc\xE4z\"";
  const auto parsed = json::Parse(doc, Hardened());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("UTF-8"), std::string::npos);
}

TEST(AdversarialParseTest, TornUtf8ReplacePolicySubstitutes) {
  json::ParseLimits limits;
  limits.utf8_policy = json::Utf8Policy::kReplace;
  const auto parsed = json::Parse("\"a\xE4z\"", limits);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\xEF\xBF\xBDz");  // U+FFFD
}

TEST(AdversarialParseTest, TornUtf8LenientPassesRawBytes) {
  json::ParseLimits limits;
  limits.utf8_policy = json::Utf8Policy::kLenient;
  const auto parsed = json::Parse("\"a\xE4z\"", limits);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\xE4z");
}

TEST(AdversarialParseTest, ValidUtf8PassesStrict) {
  // 2-, 3-, and 4-byte sequences plus a surrogate-pair escape.
  const auto parsed =
      json::Parse("\"\xC3\xA9 \xE4\xB8\xAD \xF0\x9F\x98\x80 \\uD83D\\uDE00\"",
                  Hardened());
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->AsString().find("\xF0\x9F\x98\x80"), std::string::npos);
}

TEST(AdversarialParseTest, UnpairedSurrogateEscapeStrictRejected) {
  EXPECT_FALSE(json::Parse("\"\\uD800\"", Hardened()).ok());
  EXPECT_FALSE(json::Parse("\"\\uDC00\"", Hardened()).ok());
  json::ParseLimits replace;
  replace.utf8_policy = json::Utf8Policy::kReplace;
  const auto parsed = json::Parse("\"\\uD800\"", replace);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xEF\xBF\xBD");
}

TEST(AdversarialParseTest, OverlongAndSurrogateUtf8BytesRejected) {
  // C0 80: overlong NUL. ED A0 80: UTF-8-encoded surrogate.
  EXPECT_FALSE(json::Parse("\"\xC0\x80\"", Hardened()).ok());
  EXPECT_FALSE(json::Parse("\"\xED\xA0\x80\"", Hardened()).ok());
}

TEST(AdversarialParseTest, StringBombIsResourceExhausted) {
  json::ParseLimits limits;
  limits.max_string_bytes = 64;
  const std::string doc = "\"" + std::string(1000, 'x') + "\"";
  const auto parsed = json::Parse(doc, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialParseTest, ArrayAndObjectBombsAreResourceExhausted) {
  json::ParseLimits limits;
  limits.max_array_elements = 8;
  limits.max_object_members = 4;
  std::string many = "[";
  for (int i = 0; i < 100; ++i) many += "0,";
  many += "0]";
  auto parsed = json::Parse(many, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);

  std::string wide = "{";
  for (int i = 0; i < 20; ++i) {
    wide += "\"k" + std::to_string(i) + "\":0,";
  }
  wide += "\"z\":0}";
  parsed = json::Parse(wide, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialParseTest, TotalValueBombIsResourceExhausted) {
  // Every container stays under its own cap, but the document as a whole
  // exceeds the global value budget.
  json::ParseLimits limits;
  limits.max_total_values = 50;
  std::string doc = "[";
  for (int i = 0; i < 30; ++i) doc += "[1,2],";
  doc += "[]]";
  const auto parsed = json::Parse(doc, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialParseTest, InputByteBudgetEnforcedUpFront) {
  json::ParseLimits limits;
  limits.max_input_bytes = 16;
  const auto parsed = json::Parse("[1,2,3,4,5,6,7,8,9]", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialJsonlTest, OversizedLineStrictIsTypedAndOffsetNamed) {
  json::ParseLimits limits;
  limits.max_record_bytes = 128;
  // A "10MB single line" scaled down: the line is rejected on length
  // alone, without being parsed.
  const std::string big = "{\"k\":\"" + std::string(4096, 'x') + "\"}";
  const std::string text = "{\"ok\":1}\n" + big + "\n{\"ok\":2}\n";

  const auto strict = json::ParseLines(text, limits);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(strict.status().message().find("line 2"), std::string::npos);

  size_t invalid = 0;
  const auto tolerant =
      json::ParseLines(text, limits, /*skip_invalid=*/true, &invalid);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(tolerant->size(), 2u);
  EXPECT_EQ(invalid, 1u);
}

TEST(AdversarialJsonlTest, StrictLineWrappingPreservesStatusCode) {
  const auto nul = json::ParseLines("{\"ok\":1}\n\"\\u0000\"\n", Hardened());
  ASSERT_FALSE(nul.ok());
  EXPECT_EQ(nul.status().code(), StatusCode::kInvalidArgument);

  const auto inf = json::ParseLines("1e999\n", Hardened());
  ASSERT_FALSE(inf.ok());
  EXPECT_EQ(inf.status().code(), StatusCode::kOutOfRange);

  const auto bomb = json::ParseLines(Nest(64) + "\n", Hardened());
  ASSERT_FALSE(bomb.ok());
  EXPECT_EQ(bomb.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialJsonlTest, RecoverableModeStillStopsAtHostileTornTail) {
  // A torn tail that is *also* hostile (unterminated + oversized) must
  // recover the clean prefix exactly as a benign torn tail would.
  json::ParseLimits limits;
  limits.max_record_bytes = 64;
  const std::string text =
      "{\"a\":1}\n{\"b\":2}\n{\"torn\":\"" + std::string(500, 'y');
  json::ParseLinesInfo info;
  const auto parsed = json::ParseLinesRecoverable(text, limits, &info);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  ASSERT_TRUE(info.truncated());
  EXPECT_EQ(info.truncated_offset, std::string("{\"a\":1}\n{\"b\":2}\n").size());
}

TEST(AdversarialJsonlTest, ReadFileLimitedRejectsOversizeBeforeBuffering) {
  const fs::path dir =
      fs::temp_directory_path() / "coachlm_adversarial_readfile";
  fs::create_directories(dir);
  const std::string path = (dir / "big.jsonl").string();
  ASSERT_TRUE(json::WriteFile(path, std::string(4096, 'x')).ok());

  const auto rejected = json::ReadFileLimited(path, 1024);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  const auto accepted = json::ReadFileLimited(path, 1u << 20);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->size(), 4096u);
  fs::remove_all(dir);
}

TEST(AdversarialParseTest, ParseLimitsSpecRoundTripsAndRejectsGarbage) {
  const auto parsed = json::ParseLimits::FromSpec(
      "max_depth=64,max_record_bytes=1048576,utf8=replace,nul=allow");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->max_depth, 64u);
  EXPECT_EQ(parsed->max_record_bytes, 1048576u);
  EXPECT_EQ(parsed->utf8_policy, json::Utf8Policy::kReplace);
  EXPECT_TRUE(parsed->allow_embedded_nul);
  const auto round = json::ParseLimits::FromSpec(parsed->ToString());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->ToString(), parsed->ToString());

  EXPECT_FALSE(json::ParseLimits::FromSpec("max_depth=abc").ok());
  EXPECT_FALSE(json::ParseLimits::FromSpec("no_such_key=1").ok());
  EXPECT_FALSE(json::ParseLimits::FromSpec("utf8=bogus").ok());
  EXPECT_FALSE(json::ParseLimits::FromSpec("max_depth").ok());
  ASSERT_TRUE(json::ParseLimits::FromSpec("unlimited").ok());
}

TEST(AdversarialPlatformTest, OversizedRawLogIsQuarantinedNotParsed) {
  // An active runtime routes the oversized record to quarantine with the
  // typed status; the batch otherwise proceeds.
  json::ParseLimits tight = json::ParseLimits::Default();
  tight.max_record_bytes = 256;
  json::ParseLimits::SetProcessDefault(tight);

  platform::PlatformConfig config;
  platform::DataPlatform data_platform(config);
  std::vector<platform::UserCase> cases;
  platform::UserCase ok_case;
  ok_case.case_id = 1;
  ok_case.raw_log = "[session=1]\nInstruction: say hi\nInput: \nResponse: hi";
  platform::UserCase bomb;
  bomb.case_id = 2;
  bomb.raw_log = "header\n" + std::string(1u << 20, 'x');
  cases.push_back(ok_case);
  cases.push_back(bomb);

  // No injected faults; the runtime is active for quarantine accounting.
  PipelineRuntime runtime{FaultInjector(FaultPlan()), RetryPolicy()};
  size_t dropped = 0;
  const InstructionDataset parsed =
      data_platform.ParseWithRuleScripts(cases, &dropped, &runtime);

  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(runtime.quarantined_records(), 1u);
  const auto records = runtime.quarantine().records();
  EXPECT_EQ(records[0].item_id, 2u);
  EXPECT_EQ(records[0].code, StatusCode::kResourceExhausted);
  EXPECT_EQ(parsed.size(), 1u);

  json::ParseLimits::SetProcessDefault(json::ParseLimits());
}

}  // namespace
}  // namespace coachlm
