#include "common/quarantine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

namespace coachlm {
namespace {

QuarantineRecord MakeRecord(uint64_t item_id, FaultSite site,
                            StatusCode code, const std::string& message,
                            int attempts) {
  QuarantineRecord record;
  record.item_id = item_id;
  record.site = site;
  record.code = code;
  record.message = message;
  record.attempts = attempts;
  return record;
}

TEST(QuarantineRecordTest, JsonRoundTrip) {
  const QuarantineRecord record =
      MakeRecord(42, FaultSite::kRevise, StatusCode::kUnavailable,
                 "backend down", 4);
  const auto restored = QuarantineRecord::FromJson(record.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, record);
}

TEST(QuarantineRecordTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(QuarantineRecord::FromJson(json::Value("a string")).ok());
  json::Object missing_fields;
  missing_fields["item_id"] = json::Value(1);
  EXPECT_FALSE(
      QuarantineRecord::FromJson(json::Value(missing_fields)).ok());
}

TEST(QuarantineLogTest, RecordsAreSortedBySiteThenItemId) {
  QuarantineLog log;
  log.Add(MakeRecord(9, FaultSite::kRevise, StatusCode::kIoError, "x", 1));
  log.Add(MakeRecord(2, FaultSite::kCollect, StatusCode::kInternal, "y", 1));
  log.Add(MakeRecord(1, FaultSite::kRevise, StatusCode::kIoError, "z", 2));
  const std::vector<QuarantineRecord> sorted = log.records();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].site, FaultSite::kCollect);
  EXPECT_EQ(sorted[1].item_id, 1u);
  EXPECT_EQ(sorted[2].item_id, 9u);
}

TEST(QuarantineLogTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "coachlm_quarantine.jsonl")
          .string();
  QuarantineLog log;
  log.Add(MakeRecord(7, FaultSite::kParse, StatusCode::kParseError,
                     "no body", 1));
  log.Add(MakeRecord(3, FaultSite::kJudge, StatusCode::kInternal,
                     "injected permanent fault", 4));
  ASSERT_TRUE(log.Save(path).ok());

  const auto loaded = QuarantineLog::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, log.records());
  std::remove(path.c_str());
}

TEST(QuarantineLogTest, AddIsThreadSafe) {
  QuarantineLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 100; ++i) {
        log.Add(MakeRecord(static_cast<uint64_t>(t * 100 + i),
                           FaultSite::kTune, StatusCode::kUnavailable,
                           "down", 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(log.size(), 800u);
  // Sorted snapshot covers every distinct id exactly once.
  const std::vector<QuarantineRecord> sorted = log.records();
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].item_id, i);
  }
}

TEST(QuarantineLogTest, EmptyLogSavesEmptyFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "coachlm_quarantine_empty.jsonl")
          .string();
  QuarantineLog log;
  EXPECT_TRUE(log.empty());
  ASSERT_TRUE(log.Save(path).ok());
  const auto loaded = QuarantineLog::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace coachlm
