#include "tuning/model_zoo.h"

#include <gtest/gtest.h>

#include "synth/generator.h"

namespace coachlm {
namespace tuning {
namespace {

TEST(ModelZooTest, StrongerGroupMatchesTableNine) {
  const auto zoo = BuildStrongerGroup();
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].model.spec().name, "LLaMA2-13b-chat");
  EXPECT_EQ(zoo[0].type, "RL-tuned");
  EXPECT_EQ(zoo[1].model.spec().name, "Vicuna-13b");
  EXPECT_EQ(zoo[1].type, "I-tuned");
  for (const ZooEntry& entry : zoo) EXPECT_TRUE(entry.stronger_group);
}

TEST(ModelZooTest, BaselineGroupCoversTableNineRows) {
  synth::CorpusConfig config;
  config.size = 1500;
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  ZooInputs inputs;
  inputs.original = &corpus.dataset;
  inputs.human_merged = &corpus.dataset;
  inputs.coach_revised = &corpus.dataset;
  const auto zoo = BuildBaselineGroup(inputs, InstructionTuner());
  ASSERT_EQ(zoo.size(), 7u);
  std::vector<std::string> names;
  for (const ZooEntry& entry : zoo) {
    names.push_back(entry.model.spec().name);
    EXPECT_FALSE(entry.stronger_group);
    EXPECT_EQ(entry.type, "I-tuned");
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "Vicuna-7b", "Alpaca", "Alpaca-cleaned",
                       "Alpaca-PandaLM", "AlpaGasus", "Alpaca-human",
                       "Alpaca-CoachLM"}));
}

TEST(ModelZooTest, UniformProfileFillsEveryCategory) {
  const AlignmentProfile profile = UniformProfile(0.9, 0.95);
  EXPECT_EQ(profile.per_category.size(), kNumCategories);
  EXPECT_DOUBLE_EQ(profile.global_quality, 0.9);
  for (const auto& [category, alignment] : profile.per_category) {
    EXPECT_DOUBLE_EQ(alignment.quality, 0.9);
    EXPECT_DOUBLE_EQ(alignment.coverage, 0.95);
  }
}

TEST(ModelZooTest, BaseSpecsScaleWithSize) {
  EXPECT_GT(Llama13BBase("x").base_knowledge, Llama7BBase("x").base_knowledge);
  EXPECT_LT(Llama13BBase("x").base_slip, Llama7BBase("x").base_slip);
  EXPECT_LT(Glm6BBase("x").base_knowledge, Llama7BBase("x").base_knowledge);
}

}  // namespace
}  // namespace tuning
}  // namespace coachlm
