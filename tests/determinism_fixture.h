#ifndef COACHLM_TESTS_DETERMINISM_FIXTURE_H_
#define COACHLM_TESTS_DETERMINISM_FIXTURE_H_

// Hand-built fixture shared by the determinism suite (and used once to
// record the pre-refactor serial golden hashes). The pairs are written out
// literally — NOT drawn from the synthetic generator — so the fixture's
// inputs stay byte-stable no matter how corpus generation evolves; the
// recorded goldens then pin the *stage* outputs (coach revision, judge
// evaluation) across refactors and thread counts.

#include <cstdint>
#include <string>
#include <utility>

#include "data/dataset.h"
#include "data/instruction_pair.h"
#include "data/revision_record.h"
#include "testsets/testset.h"

namespace coachlm {
namespace testfix {

inline InstructionPair MakePair(uint64_t id, std::string instruction,
                                std::string input, std::string output,
                                Category category = Category::kGeneralQa) {
  InstructionPair pair;
  pair.id = id;
  pair.instruction = std::move(instruction);
  pair.input = std::move(input);
  pair.output = std::move(output);
  pair.category = category;
  return pair;
}

/// A small corpus with the defect classes the coach knows how to repair:
/// typos, thin answers, robotic openers, and one clean pair.
inline InstructionDataset FixtureCorpus() {
  InstructionDataset corpus;
  corpus.Add(MakePair(1, "Explain teh water cycle.", "",
                      "As an AI language model, I can say water evaporates "
                      "and then it rains.",
                      Category::kScienceQa));
  corpus.Add(MakePair(2, "Summarize the passage.",
                      "The printing press changed Europe. Books became "
                      "cheap. Literacy spread quickly across cities.",
                      "Books got cheaper.", Category::kSummarization));
  corpus.Add(MakePair(3, "Write a short note about regular exercise.", "",
                      "Exercise is good. It helps health.",
                      Category::kHealthAdvice));
  corpus.Add(MakePair(4, "List three benefits of teh sun.", "",
                      "It gives light. It gives warmth. It helps plants.",
                      Category::kGeneralQa));
  corpus.Add(MakePair(5, "Describe photosynthesis in one paragraph.", "",
                      "Photosynthesis is the process by which plants turn "
                      "sunlight, water, and carbon dioxide into sugars and "
                      "oxygen, powering nearly every food chain on Earth.",
                      Category::kScienceQa));
  corpus.Add(MakePair(6, "Give advice for a job interview.", "",
                      "Be on time.", Category::kGeneralQa));
  return corpus;
}

/// Expert revisions teaching the coach concrete behaviours: the
/// "teh"->"the" substitution, opener removal, expansion, and closings.
inline RevisionDataset FixtureRevisions() {
  RevisionDataset revisions;
  auto add = [&revisions](InstructionPair original, InstructionPair revised) {
    RevisionRecord record;
    record.original = std::move(original);
    record.revised = std::move(revised);
    record.RecomputeDerived();
    revisions.push_back(std::move(record));
  };
  add(MakePair(101, "Explain teh seasons.", "",
               "As an AI language model, I think seasons come from tilt."),
      MakePair(101, "Explain the seasons.", "",
               "Seasons come from the tilt of the Earth's axis as it "
               "orbits the sun. The tilted hemisphere receives more "
               "direct light in summer. I hope this helps!"));
  add(MakePair(102, "Describe teh moon.", "",
               "The moon orbits Earth."),
      MakePair(102, "Describe the moon.", "",
               "The moon orbits Earth roughly every 27 days. Its gravity "
               "drives the ocean tides. For example, spring tides occur "
               "when the sun and moon align. I hope this helps!"));
  add(MakePair(103, "Give tips for studying.", "",
               "Study every day."),
      MakePair(103, "Give tips for studying.", "",
               "Study a little every day instead of cramming. Take short "
               "breaks to stay focused. Reviewing notes before sleep also "
               "improves recall. Good luck with your studies!"));
  add(MakePair(104, "Summarize teh article.", "Rivers move soil downhill.",
               "As an AI language model, I say rivers move soil."),
      MakePair(104, "Summarize the article.", "Rivers move soil downhill.",
               "Rivers carry soil downhill and deposit it in floodplains. "
               "This steady transport builds fertile land over time. I "
               "hope this helps!"));
  return revisions;
}

/// A tiny test set for the judge/evaluation golden.
inline testsets::TestSet FixtureTestSet() {
  testsets::TestSet set;
  set.name = "fixture8";
  set.reference_source = "Human";
  set.num_categories = 3;
  uint64_t id = 201;
  set.items.Add(MakePair(id++, "Explain why leaves change color.", "",
                         "Leaves change color because chlorophyll breaks "
                         "down in autumn, unmasking yellow and orange "
                         "pigments that were present all along.",
                         Category::kScienceQa));
  set.items.Add(MakePair(id++, "Summarize the sentence.",
                         "Trade routes connected distant ancient cities.",
                         "Ancient trade routes linked far-apart cities.",
                         Category::kSummarization));
  set.items.Add(MakePair(id++, "Suggest a healthy breakfast.", "",
                         "A healthy breakfast could be oatmeal with fruit "
                         "and nuts, which provides fiber, vitamins, and "
                         "steady energy for the morning.",
                         Category::kHealthAdvice));
  set.items.Add(MakePair(id++, "Name a use of magnets.", "",
                         "Magnets are used in electric motors, where "
                         "magnetic fields convert current into motion.",
                         Category::kScienceQa));
  return set;
}

/// FNV-1a over a string — a tiny, platform-stable content hash.
inline uint64_t Fnv1a(const std::string& text, uint64_t h = 1469598103934665603ULL) {
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Order-sensitive content hash of a dataset (full JSON of every pair).
inline uint64_t HashDataset(const InstructionDataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  for (const InstructionPair& pair : dataset) {
    h = Fnv1a(pair.ToJson().Dump(), h);
  }
  return h;
}

}  // namespace testfix
}  // namespace coachlm

#endif  // COACHLM_TESTS_DETERMINISM_FIXTURE_H_
