#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace coachlm {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextGaussian(3, 2);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 5.0, 5);
  h.Add(0.5);   // bucket 0
  h.Add(4.99);  // bucket 4
  h.Add(5.0);   // clamps to bucket 4
  h.Add(-1.0);  // clamps to bucket 0
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 2.0);
}

TEST(HistogramTest, FractionAtLeastUsesExactValues) {
  Histogram h(0.0, 5.0, 10);
  for (double v : {4.6, 4.4, 4.51, 3.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.FractionAtLeast(4.5), 0.5);
  EXPECT_DOUBLE_EQ(h.Mean(), (4.6 + 4.4 + 4.51 + 3.0) / 4.0);
}

TEST(HistogramTest, AsciiRendersOneRowPerBucket) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  const std::string art = h.ToAscii(10);
  size_t lines = 0;
  for (char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

}  // namespace
}  // namespace coachlm
