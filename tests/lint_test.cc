#include "lint/lint.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace coachlm {
namespace lint {
namespace {

/// Absolute path of one fixture snippet. COACHLM_LINT_FIXTURE_DIR is baked
/// in by tests/CMakeLists.txt so the test runs from any working directory.
std::string FixturePath(const std::string& name) {
  return std::string(COACHLM_LINT_FIXTURE_DIR) + "/" + name;
}

/// Lints one fixture with an empty base registry; the snippet's own
/// declarations are harvested by LintFile, mirroring the tree driver.
std::vector<Finding> LintFixture(const std::string& name) {
  auto findings = LintFile(FixturePath(name), SymbolRegistry{});
  EXPECT_TRUE(findings.ok()) << findings.status().message();
  if (!findings.ok()) return {};
  return std::move(findings).ValueOrDie();
}

/// The stable `file:line: [rule]` prefix lint_test pins for every case.
std::string Expected(const std::string& fixture, size_t line,
                     const std::string& rule) {
  return FixturePath(fixture) + ":" + std::to_string(line) + ": [" + rule +
         "]";
}

/// Asserts the finding renders with exactly the expected
/// `file:line: [rule]` prefix followed by a non-empty message.
void ExpectFormatted(const Finding& finding, const std::string& fixture,
                     size_t line, const std::string& rule) {
  const std::string formatted = FormatFinding(finding);
  const std::string prefix = Expected(fixture, line, rule) + " ";
  ASSERT_GE(formatted.size(), prefix.size()) << formatted;
  EXPECT_EQ(formatted.substr(0, prefix.size()), prefix);
  EXPECT_GT(formatted.size(), prefix.size()) << "message must be non-empty";
}

TEST(FormatFindingTest, RendersFileLineRuleMessage) {
  EXPECT_EQ(FormatFinding({"src/a.cc", 7, "some-rule", "the message"}),
            "src/a.cc:7: [some-rule] the message");
}

TEST(LintFixtureTest, BannedSymbolPositive) {
  const std::vector<Finding> findings =
      LintFixture("bad_banned_symbol.cc.snippet");
  ASSERT_EQ(findings.size(), 2u);
  // std::random_device and an unseeded std::mt19937.
  ExpectFormatted(findings[0], "bad_banned_symbol.cc.snippet", 4,
                  kRuleBannedSymbol);
  ExpectFormatted(findings[1], "bad_banned_symbol.cc.snippet", 5,
                  kRuleBannedSymbol);
}

TEST(LintFixtureTest, BannedSymbolNegative) {
  EXPECT_TRUE(LintFixture("good_banned_symbol.cc.snippet").empty());
}

TEST(LintFixtureTest, RawClockPositive) {
  const std::vector<Finding> findings = LintFixture("bad_raw_clock.cc.snippet");
  ASSERT_EQ(findings.size(), 1u);
  ExpectFormatted(findings[0], "bad_raw_clock.cc.snippet", 4, kRuleRawClock);
}

TEST(LintFixtureTest, RawClockNegative) {
  EXPECT_TRUE(LintFixture("good_raw_clock.cc.snippet").empty());
}

TEST(LintFixtureTest, UnorderedSerializationPositive) {
  const std::vector<Finding> findings =
      LintFixture("bad_unordered_serialization.cc.snippet");
  ASSERT_EQ(findings.size(), 1u);
  // The range-for over the unordered_map whose body appends to a string.
  ExpectFormatted(findings[0], "bad_unordered_serialization.cc.snippet", 7,
                  kRuleUnorderedSerialization);
}

TEST(LintFixtureTest, UnorderedSerializationNegative) {
  // Same data, but copied into a std::map before serialization.
  EXPECT_TRUE(LintFixture("good_unordered_serialization.cc.snippet").empty());
}

TEST(LintFixtureTest, DiscardedStatusPositive) {
  const std::vector<Finding> findings =
      LintFixture("bad_discarded_status.cc.snippet");
  ASSERT_EQ(findings.size(), 2u);
  // A bare call statement, and a (void) cast with no explaining comment.
  ExpectFormatted(findings[0], "bad_discarded_status.cc.snippet", 10,
                  kRuleDiscardedStatus);
  ExpectFormatted(findings[1], "bad_discarded_status.cc.snippet", 14,
                  kRuleDiscardedStatus);
}

TEST(LintFixtureTest, DiscardedStatusNegative) {
  // Handled status, plus a commented (void) drop.
  EXPECT_TRUE(LintFixture("good_discarded_status.cc.snippet").empty());
}

TEST(LintFixtureTest, UnsafeFnPositive) {
  const std::vector<Finding> findings = LintFixture("bad_unsafe_fn.cc.snippet");
  ASSERT_EQ(findings.size(), 1u);
  ExpectFormatted(findings[0], "bad_unsafe_fn.cc.snippet", 4, kRuleUnsafeFn);
}

TEST(LintFixtureTest, UnsafeFnNegative) {
  EXPECT_TRUE(LintFixture("good_unsafe_fn.cc.snippet").empty());
}

TEST(LintFixtureTest, IncludeHygienePositive) {
  const std::vector<Finding> findings = LintFixture("bad_guard.h.snippet");
  ASSERT_EQ(findings.size(), 3u);
  // Missing guard, duplicate include, raw C header — sorted by line.
  ExpectFormatted(findings[0], "bad_guard.h.snippet", 1, kRuleIncludeHygiene);
  ExpectFormatted(findings[1], "bad_guard.h.snippet", 2, kRuleIncludeHygiene);
  ExpectFormatted(findings[2], "bad_guard.h.snippet", 3, kRuleIncludeHygiene);
}

TEST(LintFixtureTest, IncludeHygieneNegative) {
  EXPECT_TRUE(LintFixture("good_guard.h.snippet").empty());
}

TEST(LintFixtureTest, SuppressionWithJustificationIsHonored) {
  // The raw-clock hit is covered by a COACHLM_LINT_ALLOW with a reason.
  EXPECT_TRUE(LintFixture("suppressed.cc.snippet").empty());
}

TEST(LintFixtureTest, SuppressionWithoutJustificationIsRejected) {
  const std::vector<Finding> findings =
      LintFixture("bad_suppression.cc.snippet");
  ASSERT_EQ(findings.size(), 1u);
  // The violation itself is swallowed; what surfaces is the bare ALLOW,
  // reported at the suppression comment's own line.
  ExpectFormatted(findings[0], "bad_suppression.cc.snippet", 4,
                  kRuleSuppressionJustification);
}

TEST(LintFixtureTest, GuardedFieldPositive) {
  const std::vector<Finding> findings =
      LintFixture("bad_guarded_field.h.snippet");
  ASSERT_EQ(findings.size(), 1u);
  // The un-locked items_.size() read; the locked Add() and the declaration
  // itself stay silent.
  ExpectFormatted(findings[0], "bad_guarded_field.h.snippet", 14,
                  kRuleGuardedField);
}

TEST(LintFixtureTest, GuardedFieldNegativeAnnotatedClean) {
  // lock_guard scopes, a COACHLM_REQUIRES method, and a constructor
  // member-init all count as covered.
  EXPECT_TRUE(LintFixture("good_guarded_field.h.snippet").empty());
}

TEST(LintFixtureTest, GuardedFieldSuppressed) {
  auto report = LintTree({FixturePath("suppressed_guarded_field.h.snippet")});
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->findings.empty());
  EXPECT_EQ(report->suppressions_used, 1u);
}

TEST(LintFixtureTest, CancelLoopPositive) {
  const std::vector<Finding> findings =
      LintFixture("bad_cancel_loop.cc.snippet");
  ASSERT_EQ(findings.size(), 1u);
  // The for loop calling the snippet's own Status-returning ProcessRecord
  // without ever naming the token.
  ExpectFormatted(findings[0], "bad_cancel_loop.cc.snippet", 9,
                  kRuleCancelUncheckedLoop);
}

TEST(LintFixtureTest, CancelLoopNegativeTokenConsulted) {
  EXPECT_TRUE(LintFixture("good_cancel_loop.cc.snippet").empty());
}

TEST(LintFixtureTest, CancelLoopSuppressed) {
  auto report = LintTree({FixturePath("suppressed_cancel_loop.cc.snippet")});
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->findings.empty());
  EXPECT_EQ(report->suppressions_used, 1u);
}

/// The three registry-drift roots: fixture catalogs whose logical paths end
/// in common/metrics.cc / common/fault.cc (the suffix the harvester keys
/// on), plus one call-site file.
std::vector<std::string> RegistryRoots(const std::string& call_site) {
  return {FixturePath("registry/common/metrics.cc.snippet"),
          FixturePath("registry/common/fault.cc.snippet"),
          FixturePath(call_site)};
}

TEST(LintTreeTest, RegistryDriftIsReportedInBothDirections) {
  auto report = LintTree(RegistryRoots("bad_metric_name.cc.snippet"));
  ASSERT_TRUE(report.ok()) << report.status().message();
  // Forward drift: typo'd call-site literals are findings.
  ASSERT_EQ(report->findings.size(), 2u);
  ExpectFormatted(report->findings[0], "bad_metric_name.cc.snippet", 8,
                  kRuleRegistryUnknownName);
  ExpectFormatted(report->findings[1], "bad_metric_name.cc.snippet", 10,
                  kRuleRegistryUnknownName);
  // Reverse drift: registered-but-never-referenced names are warnings,
  // reported at their declaration line in the registry source.
  ASSERT_EQ(report->warnings.size(), 2u);
  ExpectFormatted(report->warnings[0], "registry/common/fault.cc.snippet", 5,
                  kRuleRegistryUnusedName);
  ExpectFormatted(report->warnings[1], "registry/common/metrics.cc.snippet",
                  8, kRuleRegistryUnusedName);
}

TEST(LintTreeTest, RegistryCleanViaLiteralPrefixAndEnumUse) {
  // "tune." + suffix covers tune.never_used; FaultSite::kChaosNever covers
  // chaos.never without its string ever appearing.
  auto report = LintTree(RegistryRoots("good_metric_name.cc.snippet"));
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->findings.empty());
  EXPECT_TRUE(report->warnings.empty());
}

TEST(LintTreeTest, FixtureDirectoryIsInvisibleToTheTreeWalk) {
  // The deliberately-broken snippets must never count against the repo:
  // the walk skips lint_fixtures/ directories, and the .snippet extension
  // keeps the files un-lintable even via other roots.
  auto report = LintTree({std::string(COACHLM_LINT_FIXTURE_DIR)});
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->files_scanned, 0u);
  EXPECT_TRUE(report->findings.empty());
}

TEST(LintTreeTest, ExplicitSnippetRootIsLinted) {
  // Naming a file directly bypasses the extension filter — that is how
  // this test (and developers) lint a fixture on purpose.
  auto report =
      LintTree({FixturePath("bad_raw_clock.cc.snippet")});
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->files_scanned, 1u);
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, kRuleRawClock);
}

TEST(HarvestDeclarationsTest, GlobalPassDropsLocalVariables) {
  // A local `words` declared unordered in one file must not poison the
  // lint of an unrelated file that reuses the name for a vector.
  SymbolRegistry cross_file;
  const std::string content =
      "void F() { std::unordered_set<std::string> words; }\n"
      "std::unordered_map<int, int> LoadIndex();\n"
      "class C { std::unordered_set<int> seen_; };\n";
  HarvestDeclarations(content, &cross_file, /*include_locals=*/false);
  EXPECT_EQ(cross_file.unordered_symbols.count("words"), 0u);
  EXPECT_EQ(cross_file.unordered_symbols.count("LoadIndex"), 1u);
  EXPECT_EQ(cross_file.unordered_symbols.count("seen_"), 1u);

  SymbolRegistry own_file;
  HarvestDeclarations(content, &own_file, /*include_locals=*/true);
  EXPECT_EQ(own_file.unordered_symbols.count("words"), 1u);
}

}  // namespace
}  // namespace lint
}  // namespace coachlm
