#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace tokenizer {
namespace {

TEST(TokenizerTest, WhitespaceTokenize) {
  EXPECT_EQ(WhitespaceTokenize("a  b\tc\nd"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_TRUE(WhitespaceTokenize("").empty());
}

TEST(TokenizerTest, WordTokenizeSeparatesPunctuation) {
  EXPECT_EQ(WordTokenize("Hello, world!"),
            (std::vector<std::string>{"Hello", ",", "world", "!"}));
}

TEST(TokenizerTest, WordTokenizeKeepsHyphensAndApostrophes) {
  const auto tokens = WordTokenize("state-of-the-art isn't bad");
  EXPECT_EQ(tokens[0], "state-of-the-art");
  EXPECT_EQ(tokens[1], "isn't");
}

TEST(TokenizerTest, WordTokenizeLeadingPunct) {
  EXPECT_EQ(WordTokenize("(note)"),
            (std::vector<std::string>{"(", "note", ")"}));
}

TEST(TokenizerTest, IsPunctuation) {
  EXPECT_TRUE(IsPunctuation("."));
  EXPECT_TRUE(IsPunctuation("!?"));
  EXPECT_FALSE(IsPunctuation("a."));
  EXPECT_FALSE(IsPunctuation(""));
}

TEST(TokenizerTest, DetokenizeReattachesPunctuation) {
  EXPECT_EQ(Detokenize({"Hello", ",", "world", "!"}), "Hello, world!");
  EXPECT_EQ(Detokenize({"(", "note", ")"}), "(note)");
  EXPECT_EQ(Detokenize({}), "");
}

TEST(TokenizerTest, TokenizeDetokenizeStableOnPlainProse) {
  const std::string text = "The quick fox jumps, runs, and rests.";
  EXPECT_EQ(Detokenize(WordTokenize(text)), text);
}

TEST(TokenizerTest, SplitSentencesOnTerminators) {
  const auto s = SplitSentences("One. Two! Three? Four");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], "One.");
  EXPECT_EQ(s[1], "Two!");
  EXPECT_EQ(s[2], "Three?");
  EXPECT_EQ(s[3], "Four");
}

TEST(TokenizerTest, SplitSentencesOnNewlines) {
  const auto s = SplitSentences("Header:\n- item one\n- item two");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "Header:");
  EXPECT_EQ(s[1], "- item one");
}

TEST(TokenizerTest, SplitSentencesKeepsDecimals) {
  const auto s = SplitSentences("Pi is 3.14 about.");
  ASSERT_EQ(s.size(), 1u);
}

TEST(TokenizerTest, SplitSentencesEmpty) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   ").empty());
}

}  // namespace
}  // namespace tokenizer
}  // namespace coachlm
