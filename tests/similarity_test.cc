#include "text/similarity.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace similarity {
namespace {

TEST(SimilarityTest, ContentWordsDropStopwordsAndShortTokens) {
  const auto words = ContentWords("The cat sat on a big mat.");
  EXPECT_EQ(words.count("the"), 0u);
  EXPECT_EQ(words.count("on"), 0u);
  EXPECT_EQ(words.count("cat"), 1u);
  EXPECT_EQ(words.count("mat"), 1u);
  EXPECT_EQ(words.count("big"), 1u);
}

TEST(SimilarityTest, OverlapIdenticalIsOne) {
  const std::string s = "photosynthesis converts carbon dioxide";
  EXPECT_DOUBLE_EQ(ContentOverlap(s, s), 1.0);
}

TEST(SimilarityTest, OverlapDisjointIsZero) {
  EXPECT_DOUBLE_EQ(
      ContentOverlap("gravity attracts masses", "poems rhyme nicely"), 0.0);
}

TEST(SimilarityTest, OverlapSymmetric) {
  const std::string a = "solar panels convert sunlight into power";
  const std::string b = "sunlight power grids rely upon panels";
  EXPECT_DOUBLE_EQ(ContentOverlap(a, b), ContentOverlap(b, a));
}

TEST(SimilarityTest, OverlapEmptyInputs) {
  EXPECT_DOUBLE_EQ(ContentOverlap("", "anything here"), 0.0);
  EXPECT_DOUBLE_EQ(ContentOverlap("the a an", "of in at"), 0.0);
}

TEST(SimilarityTest, ContainmentIsAsymmetric) {
  const std::string query = "gravity tides";
  const std::string doc = "gravity causes ocean tides and holds planets";
  EXPECT_DOUBLE_EQ(Containment(query, doc), 1.0);
  EXPECT_LT(Containment(doc, query), 1.0);
}

TEST(SimilarityTest, ContainmentPartial) {
  EXPECT_NEAR(Containment("gravity apples bananas", "gravity is real"),
              1.0 / 3.0, 1e-12);
}

TEST(SimilarityTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(ContentOverlap("GRAVITY Pulls", "gravity pulls"), 1.0);
}

}  // namespace
}  // namespace similarity
}  // namespace coachlm
