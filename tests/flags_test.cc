#include "common/flags.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace {

Result<Flags> ParseArgs(std::vector<const char*> argv,
                        std::vector<std::string> known) {
  argv.insert(argv.begin(), "coachlm");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(FlagsTest, CommandAndValues) {
  auto flags = ParseArgs({"train", "--alpha", "0.3", "--out=x.json"},
                         {"alpha", "out"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->command(), "train");
  EXPECT_DOUBLE_EQ(flags->GetDouble("alpha", 0), 0.3);
  EXPECT_EQ(flags->GetString("out"), "x.json");
}

TEST(FlagsTest, SwitchesHaveNoValue) {
  auto flags = ParseArgs({"revise", "--verify", "--threads", "4"},
                         {"verify", "threads"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("verify"));
  EXPECT_EQ(flags->GetInt("threads", 0), 4);
}

TEST(FlagsTest, UnknownFlagFailsFast) {
  auto flags = ParseArgs({"train", "--alhpa", "0.3"}, {"alpha"});
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.status().message().find("alhpa"), std::string::npos);
}

TEST(FlagsTest, PositionalArguments) {
  auto flags = ParseArgs({"rate", "a.json", "b.json"}, {});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->command(), "rate");
  ASSERT_EQ(flags->positional().size(), 2u);
  EXPECT_EQ(flags->positional()[0], "a.json");
}

TEST(FlagsTest, FallbacksOnAbsentOrUnparseable) {
  auto flags = ParseArgs({"x", "--alpha", "notanumber"}, {"alpha"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("alpha", 7.0), 7.0);
  EXPECT_EQ(flags->GetInt("missing", 9), 9);
  EXPECT_EQ(flags->GetString("missing", "d"), "d");
}

TEST(FlagsTest, EmptyArgvIsValid) {
  const char* argv[] = {"coachlm"};
  auto flags = Flags::Parse(1, argv, {});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->command().empty());
}

}  // namespace
}  // namespace coachlm
