#include "lm/rule_store.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace lm {
namespace {

RuleStore PopulatedStore() {
  RuleStore store;
  store.token_subs["teh"]["the"] = 12;
  store.token_subs["teh"]["then"] = 1;
  store.token_subs["recieve"]["receive"] = 3;
  store.capitalize_support = 5;
  store.doubled_removal_support = 2;
  store.reflow_support = 7;
  store.strip_tokens["OUTPUT:"] = 4;
  store.opener_removals["As an AI language model,"] = 6;
  store.closings["Hope this helps!"] = 9;
  store.closings["Rare closing."] = 1;
  store.markers["For example,"] = 11;
  store.context_exemplars["Keep the answer under 200 words."] = 3;
  store.strip_phrases["Answer in exactly zero words."] = 2;
  store.filler_replacements["the thing"] = {"gravity", "chess"};
  store.train_pairs = 100;
  store.mean_appended_sentences = 2.5;
  store.mean_target_response_words = 120.0;
  store.closing_rate = 0.8;
  store.context_add_rate = 0.1;
  store.rewrite_rate = 0.3;
  store.rewrite_overlap_threshold = 0.12;
  return store;
}

TEST(RuleStoreTest, EmptyDetection) {
  EXPECT_TRUE(RuleStore().empty());
  EXPECT_FALSE(PopulatedStore().empty());
}

TEST(RuleStoreTest, BestSubstitutionRespectsSupport) {
  const RuleStore store = PopulatedStore();
  EXPECT_EQ(store.BestSubstitution("teh", 2), "the");
  EXPECT_EQ(store.BestSubstitution("recieve", 2), "receive");
  EXPECT_EQ(store.BestSubstitution("recieve", 5), "");
  EXPECT_EQ(store.BestSubstitution("unknown", 1), "");
}

TEST(RuleStoreTest, BestPhraseAndPhrasesAbove) {
  const RuleStore store = PopulatedStore();
  EXPECT_EQ(RuleStore::BestPhrase(store.closings, 2), "Hope this helps!");
  EXPECT_EQ(RuleStore::BestPhrase(store.closings, 20), "");
  const auto phrases = RuleStore::PhrasesAbove(store.closings, 2);
  ASSERT_EQ(phrases.size(), 1u);
  EXPECT_EQ(phrases[0], "Hope this helps!");
}

TEST(RuleStoreTest, PhrasesAboveOrdersBySupport) {
  RuleStore store;
  store.markers["low"] = 2;
  store.markers["high"] = 9;
  store.markers["mid"] = 5;
  const auto phrases = RuleStore::PhrasesAbove(store.markers, 2);
  ASSERT_EQ(phrases.size(), 3u);
  EXPECT_EQ(phrases[0], "high");
  EXPECT_EQ(phrases[1], "mid");
  EXPECT_EQ(phrases[2], "low");
}

TEST(RuleStoreTest, JsonCheckpointRoundTrip) {
  const RuleStore store = PopulatedStore();
  auto restored = RuleStore::FromJson(store.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->token_subs, store.token_subs);
  EXPECT_EQ(restored->capitalize_support, store.capitalize_support);
  EXPECT_EQ(restored->doubled_removal_support, store.doubled_removal_support);
  EXPECT_EQ(restored->reflow_support, store.reflow_support);
  EXPECT_EQ(restored->strip_tokens, store.strip_tokens);
  EXPECT_EQ(restored->opener_removals, store.opener_removals);
  EXPECT_EQ(restored->closings, store.closings);
  EXPECT_EQ(restored->markers, store.markers);
  EXPECT_EQ(restored->context_exemplars, store.context_exemplars);
  EXPECT_EQ(restored->strip_phrases, store.strip_phrases);
  EXPECT_EQ(restored->filler_replacements, store.filler_replacements);
  EXPECT_EQ(restored->train_pairs, store.train_pairs);
  EXPECT_DOUBLE_EQ(restored->mean_appended_sentences,
                   store.mean_appended_sentences);
  EXPECT_DOUBLE_EQ(restored->mean_target_response_words,
                   store.mean_target_response_words);
  EXPECT_DOUBLE_EQ(restored->closing_rate, store.closing_rate);
  EXPECT_DOUBLE_EQ(restored->context_add_rate, store.context_add_rate);
  EXPECT_DOUBLE_EQ(restored->rewrite_rate, store.rewrite_rate);
  EXPECT_DOUBLE_EQ(restored->rewrite_overlap_threshold,
                   store.rewrite_overlap_threshold);
}

TEST(RuleStoreTest, FromJsonRejectsNonObject) {
  EXPECT_FALSE(RuleStore::FromJson(json::Value(3.0)).ok());
}

}  // namespace
}  // namespace lm
}  // namespace coachlm
