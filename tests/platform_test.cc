#include "platform/platform.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "coach/pipeline.h"
#include "common/clock.h"
#include "expert/pipeline.h"
#include "synth/generator.h"

namespace coachlm {
namespace platform {
namespace {

/// Advances a fixed delta on every read, so the start/stop NowMicros()
/// pair around the coach pass yields an exact, assertable coach_seconds.
class SteppingClock : public Clock {
 public:
  explicit SteppingClock(int64_t step_micros) : step_(step_micros) {}

  int64_t NowMicros() const override {
    return step_ * (1 + reads_.fetch_add(1, std::memory_order_relaxed));
  }
  void SleepMicros(int64_t /*micros*/) override {}

  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }

 private:
  const int64_t step_;
  mutable std::atomic<int64_t> reads_{0};
};

PlatformConfig SmallConfig() {
  PlatformConfig config;
  config.batch_size = 600;
  config.seed = 404;
  config.inference_threads = 2;
  return config;
}

class PlatformTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig corpus_config;
    corpus_config.size = 2500;
    corpus_config.seed = 42;
    synth::SynthCorpusGenerator generator(corpus_config);
    const synth::SynthCorpus corpus = generator.Generate();
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 700;
    const auto study = expert::RunRevisionStudy(
        corpus.dataset, generator.engine(), study_config);
    coach::CoachConfig coach_config;
    auto pipeline =
        coach::RunCoachPipeline(corpus.dataset, study.revisions, coach_config);
    coach_ = new coach::CoachLm(std::move(*pipeline.model));
  }
  static void TearDownTestSuite() { delete coach_; }
  static coach::CoachLm* coach_;
};

coach::CoachLm* PlatformTest::coach_ = nullptr;

TEST_F(PlatformTest, CollectionIsDeterministicAndSized) {
  DataPlatform platform(SmallConfig());
  const auto a = platform.CollectUserCases();
  const auto b = platform.CollectUserCases();
  ASSERT_EQ(a.size(), 600u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].raw_log, b[i].raw_log);
  }
}

TEST_F(PlatformTest, RuleScriptsParseMostAndDropGarbled) {
  DataPlatform platform(SmallConfig());
  size_t dropped = 0;
  const InstructionDataset raw =
      platform.ParseWithRuleScripts(platform.CollectUserCases(), &dropped);
  EXPECT_GT(raw.size(), 550u);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(raw.size() + dropped, 600u);
  for (const InstructionPair& pair : raw) {
    EXPECT_FALSE(pair.instruction.empty());
    // Log headers are stripped.
    EXPECT_EQ(pair.instruction.find("[session="), std::string::npos);
  }
}

TEST_F(PlatformTest, CoachPrecursorCutsAnnotationEffort) {
  DataPlatform platform(SmallConfig());
  const BatchReport baseline = platform.RunCleaningBatch(nullptr);
  const BatchReport with_coach = platform.RunCleaningBatch(coach_);
  EXPECT_FALSE(baseline.with_coach);
  EXPECT_TRUE(with_coach.with_coach);
  EXPECT_EQ(baseline.pairs, with_coach.pairs);
  // CoachLM-revised pairs leave less editing distance for annotators.
  EXPECT_LT(with_coach.mean_remaining_edit, baseline.mean_remaining_edit);
  EXPECT_GT(with_coach.pairs_per_person_day, baseline.pairs_per_person_day);
  EXPECT_GT(with_coach.coach_samples_per_sec, 1.0);
  // Section IV-A: the net gain after the proficiency deduction is
  // meaningfully positive.
  EXPECT_GT(platform.NetImprovement(baseline, with_coach), 0.05);
}

TEST_F(PlatformTest, InjectedClockTimesTheCoachPassExactly) {
  PlatformConfig config = SmallConfig();
  SteppingClock clock(/*step_micros=*/250000);
  config.clock = &clock;
  DataPlatform platform(config);
  const BatchReport report = platform.RunCleaningBatch(coach_);
  // Exactly one start/stop read pair, 0.25 virtual seconds apart.
  EXPECT_EQ(clock.reads(), 2);
  EXPECT_DOUBLE_EQ(report.coach_seconds, 0.25);
  EXPECT_DOUBLE_EQ(report.coach_samples_per_sec,
                   static_cast<double>(report.pairs) / 0.25);
}

TEST_F(PlatformTest, BaselineBatchNeverReadsTheClock) {
  PlatformConfig config = SmallConfig();
  SteppingClock clock(/*step_micros=*/250000);
  config.clock = &clock;
  DataPlatform platform(config);
  const BatchReport report = platform.RunCleaningBatch(nullptr);
  // No coach pass, no timing: the injected clock stays untouched.
  EXPECT_EQ(clock.reads(), 0);
  EXPECT_DOUBLE_EQ(report.coach_seconds, 0.0);
}

TEST_F(PlatformTest, NetImprovementHandlesDegenerateBaseline) {
  DataPlatform platform(SmallConfig());
  BatchReport zero;
  BatchReport anything;
  anything.pairs_per_person_day = 100;
  EXPECT_EQ(platform.NetImprovement(zero, anything), 0.0);
}

}  // namespace
}  // namespace platform
}  // namespace coachlm
