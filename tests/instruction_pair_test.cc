#include "data/instruction_pair.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace {

InstructionPair Sample() {
  InstructionPair pair;
  pair.id = 7;
  pair.instruction = "Summarize the passage.";
  pair.input = "Some text\nwith lines.";
  pair.output = "A summary.";
  pair.category = Category::kSummarization;
  return pair;
}

TEST(InstructionPairTest, FullInstructionJoinsInput) {
  InstructionPair pair = Sample();
  EXPECT_EQ(pair.FullInstruction(),
            "Summarize the passage.\nSome text\nwith lines.");
  pair.input.clear();
  EXPECT_EQ(pair.FullInstruction(), "Summarize the passage.");
}

TEST(InstructionPairTest, TotalChars) {
  const InstructionPair pair = Sample();
  EXPECT_EQ(pair.TotalChars(), pair.instruction.size() + pair.input.size() +
                                   pair.output.size());
}

TEST(InstructionPairTest, WellFormedness) {
  EXPECT_TRUE(Sample().IsWellFormed());
  InstructionPair empty_out = Sample();
  empty_out.output = "   ";
  EXPECT_FALSE(empty_out.IsWellFormed());
  InstructionPair empty_in = Sample();
  empty_in.instruction = "";
  EXPECT_FALSE(empty_in.IsWellFormed());
}

TEST(InstructionPairTest, JsonRoundTrip) {
  const InstructionPair pair = Sample();
  auto parsed = InstructionPair::FromJson(pair.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, pair);
}

TEST(InstructionPairTest, MinimalAlpacaJsonLoads) {
  auto doc = json::Parse(
      R"({"instruction": "Do X.", "input": "", "output": "Done."})");
  ASSERT_TRUE(doc.ok());
  auto pair = InstructionPair::FromJson(*doc);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->instruction, "Do X.");
  EXPECT_EQ(pair->id, 0u);
  EXPECT_EQ(pair->category, Category::kGeneralQa);  // default
}

TEST(InstructionPairTest, RejectsMissingFields) {
  auto no_output = json::Parse(R"({"instruction": "Do X."})");
  ASSERT_TRUE(no_output.ok());
  EXPECT_FALSE(InstructionPair::FromJson(*no_output).ok());
  EXPECT_FALSE(InstructionPair::FromJson(json::Value(3.0)).ok());
}

TEST(InstructionPairTest, RejectsUnknownCategory) {
  auto doc = json::Parse(
      R"({"instruction": "i", "output": "o", "category": "bogus"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(InstructionPair::FromJson(*doc).ok());
}

}  // namespace
}  // namespace coachlm
