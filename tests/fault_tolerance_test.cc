// End-to-end fault-tolerance guarantees: transient fault plans leave every
// stage byte-identical to the fault-free run, permanent failures degrade to
// quarantine instead of aborting, and checkpointed stages resume to the
// same bytes.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "coach/coach_lm.h"
#include "coach/trainer.h"
#include "common/checkpoint.h"
#include "common/clock.h"
#include "common/execution.h"
#include "common/fault.h"
#include "common/runtime.h"
#include "expert/pipeline.h"
#include "lm/pair_text.h"
#include "platform/platform.h"
#include "synth/generator.h"

namespace coachlm {
namespace {

namespace fs = std::filesystem;

std::string DatasetBytes(const InstructionDataset& dataset) {
  std::string bytes;
  for (const auto& pair : dataset) {
    bytes += std::to_string(pair.id);
    bytes += '\x1f';
    bytes += lm::SerializePair(pair);
    bytes += '\x1e';
  }
  return bytes;
}

PipelineRuntime MakeRuntime(double transient_rate, double permanent_rate,
                            Clock* clock) {
  FaultPlan plan;
  plan.transient_rate = transient_rate;
  plan.permanent_rate = permanent_rate;
  plan.seed = 9;
  return PipelineRuntime(FaultInjector(plan), RetryPolicy(), clock);
}

/// Shared small trained coach + corpus, built once for the suite.
class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 1500;
    config.seed = 42;
    synth::SynthCorpusGenerator generator(config);
    corpus_ = new synth::SynthCorpus(generator.Generate());
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 400;
    const auto study = expert::RunRevisionStudy(
        corpus_->dataset, generator.engine(), study_config);
    coach::CoachConfig coach_config;
    model_ = new coach::CoachLm(
        coach::CoachTrainer(coach_config).Train(study.revisions));
    ExecutionContext exec(4);
    baseline_ = new InstructionDataset(model_->ReviseDataset(
        corpus_->dataset, {}, nullptr, exec, /*runtime=*/nullptr,
        /*checkpoint=*/nullptr));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete model_;
    delete corpus_;
  }

  static synth::SynthCorpus* corpus_;
  static coach::CoachLm* model_;
  /// Fault-free revision of corpus_->dataset (the reference bytes).
  static InstructionDataset* baseline_;
};

synth::SynthCorpus* FaultToleranceTest::corpus_ = nullptr;
coach::CoachLm* FaultToleranceTest::model_ = nullptr;
InstructionDataset* FaultToleranceTest::baseline_ = nullptr;

TEST_F(FaultToleranceTest, TransientPlanIsByteIdenticalToFaultFree) {
  FakeClock clock;  // backoff advances virtual time only; no real sleeps
  PipelineRuntime runtime = MakeRuntime(0.05, 0.0, &clock);
  ExecutionContext exec(4);
  coach::RevisionPassStats stats;
  const InstructionDataset revised = model_->ReviseDataset(
      corpus_->dataset, {}, &stats, exec, &runtime);

  EXPECT_EQ(DatasetBytes(revised), DatasetBytes(*baseline_));
  EXPECT_GT(runtime.recovered_records(), 0u);
  EXPECT_GT(stats.recovered, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_TRUE(runtime.quarantine().empty());
  EXPECT_GT(runtime.total_attempts(), static_cast<uint64_t>(stats.total));
}

TEST_F(FaultToleranceTest, TransientPlanIsDeterministicAcrossThreadCounts) {
  auto run = [&](size_t threads, coach::RevisionPassStats* stats) {
    FakeClock clock;
    PipelineRuntime runtime = MakeRuntime(0.05, 0.0, &clock);
    ExecutionContext exec(threads);
    return DatasetBytes(
        model_->ReviseDataset(corpus_->dataset, {}, stats, exec, &runtime));
  };
  coach::RevisionPassStats serial_stats, wide_stats;
  EXPECT_EQ(run(1, &serial_stats), run(8, &wide_stats));
  EXPECT_EQ(serial_stats.recovered, wide_stats.recovered);
  EXPECT_EQ(serial_stats.quarantined, wide_stats.quarantined);
}

TEST_F(FaultToleranceTest, PermanentFaultsQuarantineWithProvenance) {
  FakeClock clock;
  PipelineRuntime runtime = MakeRuntime(0.0, 0.01, &clock);
  ExecutionContext exec(4);
  coach::RevisionPassStats stats;
  const InstructionDataset revised = model_->ReviseDataset(
      corpus_->dataset, {}, &stats, exec, &runtime);

  // The stage never aborts: every input pair is present in the output.
  ASSERT_EQ(revised.size(), corpus_->dataset.size());
  const auto quarantined = runtime.quarantine().records();
  ASSERT_GT(quarantined.size(), 0u);
  EXPECT_EQ(stats.quarantined, quarantined.size());
  std::unordered_set<uint64_t> doomed_ids;
  for (const auto& record : quarantined) {
    EXPECT_EQ(record.site, FaultSite::kRevise);
    EXPECT_GE(record.attempts, 1);
    EXPECT_FALSE(record.message.empty());
    doomed_ids.insert(record.item_id);
  }
  // Quarantined pairs fall back to their original text; everything else
  // matches the fault-free revision.
  for (size_t i = 0; i < revised.size(); ++i) {
    if (doomed_ids.count(corpus_->dataset[i].id) > 0) {
      EXPECT_EQ(lm::SerializePair(revised[i]),
                lm::SerializePair(corpus_->dataset[i]));
    } else {
      EXPECT_EQ(lm::SerializePair(revised[i]),
                lm::SerializePair((*baseline_)[i]));
    }
  }
}

TEST_F(FaultToleranceTest, CheckpointResumeReproducesIdenticalBytes) {
  const std::string dir =
      (fs::temp_directory_path() / "coachlm_ft_resume_test").string();
  fs::remove_all(dir);
  const std::string fingerprint = ConfigFingerprint("ft-resume-test");
  ExecutionContext exec(4);

  // First run journals the whole stage (interval 256 => several commits)
  // and is "killed" before Finish(): the checkpoint files stay behind.
  {
    StageCheckpointer checkpoint(dir, "revise", fingerprint, 256);
    checkpoint.Resume();
    const InstructionDataset first = model_->ReviseDataset(
        corpus_->dataset, {}, nullptr, exec, /*runtime=*/nullptr,
        &checkpoint);
    EXPECT_EQ(DatasetBytes(first), DatasetBytes(*baseline_));
    ASSERT_TRUE(fs::exists(checkpoint.manifest_path()));
  }

  // Chop the journal down to its first 2 commits to simulate a crash
  // mid-stage, then resume: only the remainder is recomputed and the
  // output is byte-identical.
  {
    StageCheckpointer full(dir, "revise", fingerprint, 256);
    const std::vector<std::string> lines = full.Resume();
    ASSERT_EQ(lines.size(), corpus_->dataset.size());
    ASSERT_TRUE(full.Finish().ok());
    StageCheckpointer partial(dir, "revise", fingerprint, 256);
    ASSERT_TRUE(
        partial
            .Commit(512, std::vector<std::string>(lines.begin(),
                                                  lines.begin() + 512))
            .ok());
  }
  StageCheckpointer resumed(dir, "revise", fingerprint, 256);
  coach::RevisionPassStats stats;
  const InstructionDataset second = model_->ReviseDataset(
      corpus_->dataset, {}, &stats, exec, /*runtime=*/nullptr, &resumed);
  EXPECT_EQ(stats.resumed, 512u);
  EXPECT_EQ(DatasetBytes(second), DatasetBytes(*baseline_));
  fs::remove_all(dir);
}

TEST_F(FaultToleranceTest, CheckpointedRunUnderFaultsStaysIdentical) {
  const std::string dir =
      (fs::temp_directory_path() / "coachlm_ft_faulty_ckpt_test").string();
  fs::remove_all(dir);
  FakeClock clock;
  PipelineRuntime runtime = MakeRuntime(0.05, 0.0, &clock);
  StageCheckpointer checkpoint(dir, "revise", ConfigFingerprint("ft-faulty"),
                               512);
  checkpoint.Resume();
  ExecutionContext exec(4);
  const InstructionDataset revised = model_->ReviseDataset(
      corpus_->dataset, {}, nullptr, exec, &runtime, &checkpoint);
  EXPECT_EQ(DatasetBytes(revised), DatasetBytes(*baseline_));
  fs::remove_all(dir);
}

TEST_F(FaultToleranceTest, InactiveRuntimeMatchesLegacyPath) {
  PipelineRuntime inactive;
  ASSERT_FALSE(inactive.active());
  ExecutionContext exec(4);
  const InstructionDataset revised = model_->ReviseDataset(
      corpus_->dataset, {}, nullptr, exec, &inactive);
  EXPECT_EQ(DatasetBytes(revised), DatasetBytes(*baseline_));
  EXPECT_EQ(inactive.total_attempts(), 0u);
}

TEST(PlatformFaultToleranceTest, BatchDegradesGracefullyUnderFaults) {
  platform::PlatformConfig config;
  config.batch_size = 500;
  config.seed = 404;
  config.inference_threads = 2;
  platform::DataPlatform data_platform(config);

  // Fault-free reference batch.
  const auto clean_cases = data_platform.CollectUserCases();
  size_t clean_dropped = 0;
  const InstructionDataset clean =
      data_platform.ParseWithRuleScripts(clean_cases, &clean_dropped);

  // Collection + parsing under combined transient and permanent faults:
  // transient faults retry to the same cases, permanent ones drop and
  // quarantine with provenance.
  FakeClock clock;
  PipelineRuntime runtime = MakeRuntime(0.05, 0.01, &clock);
  const auto faulty_cases = data_platform.CollectUserCases(&runtime);
  EXPECT_LT(faulty_cases.size(), clean_cases.size());
  size_t faulty_dropped = 0;
  const InstructionDataset faulty = data_platform.ParseWithRuleScripts(
      faulty_cases, &faulty_dropped, &runtime);
  EXPECT_GT(faulty.size(), 0u);
  EXPECT_GT(runtime.quarantined_records(), 0u);
  EXPECT_GT(runtime.recovered_records(), 0u);

  // Every surviving case is byte-identical to its fault-free twin.
  std::unordered_set<std::string> clean_serialized;
  for (const auto& pair : clean) {
    clean_serialized.insert(lm::SerializePair(pair));
  }
  for (const auto& pair : faulty) {
    EXPECT_EQ(clean_serialized.count(lm::SerializePair(pair)), 1u);
  }
}

}  // namespace
}  // namespace coachlm
