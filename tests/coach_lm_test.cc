#include "coach/coach_lm.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "coach/trainer.h"
#include "expert/pipeline.h"
#include "lm/pair_text.h"
#include "quality/criteria.h"
#include "synth/generator.h"
#include "text/string_util.h"

namespace coachlm {
namespace coach {
namespace {

/// Shared small pipeline state, built once.
class CoachLmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 3000;
    config.seed = 42;
    generator_ = new synth::SynthCorpusGenerator(config);
    corpus_ = new synth::SynthCorpus(generator_->Generate());
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 900;
    study_ = new expert::RevisionStudyResult(expert::RunRevisionStudy(
        corpus_->dataset, generator_->engine(), study_config));
    CoachConfig coach_config;
    coach_config.alpha = 0.3;
    model_ = new CoachLm(CoachTrainer(coach_config).Train(study_->revisions));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete study_;
    delete corpus_;
    delete generator_;
  }

  static synth::SynthCorpusGenerator* generator_;
  static synth::SynthCorpus* corpus_;
  static expert::RevisionStudyResult* study_;
  static CoachLm* model_;
};

synth::SynthCorpusGenerator* CoachLmTest::generator_ = nullptr;
synth::SynthCorpus* CoachLmTest::corpus_ = nullptr;
expert::RevisionStudyResult* CoachLmTest::study_ = nullptr;
CoachLm* CoachLmTest::model_ = nullptr;

TEST_F(CoachLmTest, TrainedModelHasRules) {
  EXPECT_FALSE(model_->rules().empty());
  EXPECT_GT(model_->rules().train_pairs, 20u);
  EXPECT_GT(model_->rules().mean_target_response_words, 30.0);
}

TEST_F(CoachLmTest, RevisionImprovesDeficientPairs) {
  Rng rng(5);
  size_t improved = 0, revised = 0;
  for (size_t i = 0; i < 300; ++i) {
    if (!corpus_->IsDeficient(i)) continue;
    const InstructionPair& pair = corpus_->dataset[i];
    const InstructionPair out = model_->Revise(pair, &rng);
    if (out.output == pair.output && out.instruction == pair.instruction) {
      continue;
    }
    ++revised;
    const double before = quality::ScorePair(pair).Combined();
    const double after = quality::ScorePair(out).Combined();
    if (after > before) ++improved;
  }
  ASSERT_GT(revised, 30u);
  EXPECT_GT(static_cast<double>(improved) / revised, 0.75);
}

TEST_F(CoachLmTest, RevisionPreservesIdAndCategory) {
  Rng rng(7);
  const InstructionPair& pair = corpus_->dataset[10];
  const InstructionPair out = model_->Revise(pair, &rng);
  EXPECT_EQ(out.id, pair.id);
  EXPECT_EQ(out.category, pair.category);
}

TEST_F(CoachLmTest, RawOutputIsSerializedPair) {
  Rng rng(11);
  const std::string raw = model_->ReviseToText(corpus_->dataset[3], &rng);
  // Either a valid serialized pair or a degenerate output the
  // post-processor must handle; valid is overwhelmingly likely here.
  EXPECT_TRUE(lm::DeserializePair(raw).ok() ||
              strings::Contains(raw, "@@"));
}

TEST_F(CoachLmTest, PostProcessorReplacesDegenerateOutputs) {
  // Force degeneration by using a backbone with 100% invalid rate.
  CoachConfig config;
  config.backbone.invalid_output_rate = 1.0;
  CoachLm degenerate(config, model_->rules());
  Rng rng(13);
  RevisionPassStats stats;
  const InstructionPair out =
      degenerate.Revise(corpus_->dataset[0], &rng, &stats);
  EXPECT_EQ(out, corpus_->dataset[0]);  // fell back to the original
  EXPECT_EQ(stats.invalid_replaced, 1u);
}

TEST_F(CoachLmTest, UntrainedBackboneIsNearIdentity) {
  CoachConfig config;
  config.backbone.invalid_output_rate = 0.0;
  config.backbone.fluency_noise = 0.0;
  CoachLm raw(config, lm::RuleStore{});
  Rng rng(17);
  const InstructionPair& pair = corpus_->dataset[5];
  const InstructionPair out = raw.Revise(pair, &rng);
  EXPECT_EQ(out.output, pair.output);
  EXPECT_EQ(out.instruction, pair.instruction);
}

TEST_F(CoachLmTest, DatasetRevisionIsDeterministicAcrossThreadCounts) {
  InstructionDataset slice;
  for (size_t i = 0; i < 60; ++i) slice.Add(corpus_->dataset[i]);
  const InstructionDataset a = model_->ReviseDataset(slice, {}, nullptr, 1);
  const InstructionDataset b = model_->ReviseDataset(slice, {}, nullptr, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(CoachLmTest, LeakageGuardSkipsTrainingPairs) {
  InstructionDataset slice;
  for (size_t i = 0; i < 20; ++i) slice.Add(corpus_->dataset[i]);
  std::unordered_set<std::string> guard;
  guard.insert(lm::SerializePair(corpus_->dataset[4]));
  RevisionPassStats stats;
  const InstructionDataset out =
      model_->ReviseDataset(slice, guard, &stats, 1);
  EXPECT_EQ(stats.leakage_skipped, 1u);
  EXPECT_EQ(out[4], corpus_->dataset[4]);
}

TEST_F(CoachLmTest, CheckpointRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "coachlm_ckpt.json").string();
  ASSERT_TRUE(model_->SaveCheckpoint(path).ok());
  auto loaded = CoachLm::LoadCheckpoint(path, model_->config());
  ASSERT_TRUE(loaded.ok());
  // Same rules -> same revision behaviour.
  Rng r1(23), r2(23);
  EXPECT_EQ(model_->ReviseToText(corpus_->dataset[8], &r1),
            loaded->ReviseToText(corpus_->dataset[8], &r2));
  std::remove(path.c_str());
}

TEST_F(CoachLmTest, LoadCheckpointFailsOnMissingFile) {
  EXPECT_FALSE(CoachLm::LoadCheckpoint("/no/such/ckpt.json", {}).ok());
}

}  // namespace
}  // namespace coach
}  // namespace coachlm
