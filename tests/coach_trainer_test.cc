#include "coach/trainer.h"

#include <gtest/gtest.h>

#include "coach/alpha_selection.h"
#include "expert/pipeline.h"
#include "lm/pair_text.h"
#include "synth/generator.h"

namespace coachlm {
namespace coach {
namespace {

class CoachTrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 3000;
    config.seed = 42;
    synth::SynthCorpusGenerator generator(config);
    const synth::SynthCorpus corpus = generator.Generate();
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 900;
    revisions_ = new RevisionDataset(
        expert::RunRevisionStudy(corpus.dataset, generator.engine(),
                                 study_config)
            .revisions);
  }
  static void TearDownTestSuite() { delete revisions_; }
  static RevisionDataset* revisions_;
};

RevisionDataset* CoachTrainerTest::revisions_ = nullptr;

TEST_F(CoachTrainerTest, CoachDatasetFollowsAlphaSelection) {
  CoachConfig config;
  config.alpha = 0.3;
  CoachTrainer trainer(config);
  const InstructionDataset coach_dataset =
      trainer.BuildCoachDataset(*revisions_);
  EXPECT_EQ(coach_dataset.size(), AlphaCount(revisions_->size(), 0.3));
  for (const InstructionPair& sample : coach_dataset) {
    EXPECT_EQ(sample.instruction, lm::kRevisionPrompt);
    EXPECT_TRUE(lm::DeserializePair(sample.input).ok());
    EXPECT_TRUE(lm::DeserializePair(sample.output).ok());
  }
}

TEST_F(CoachTrainerTest, AlphaZeroYieldsUntrainedModel) {
  CoachConfig config;
  config.alpha = 0.0;
  const CoachLm model = CoachTrainer(config).Train(*revisions_);
  EXPECT_TRUE(model.rules().empty());
}

TEST_F(CoachTrainerTest, MoreAlphaMoreTrainingPairs) {
  CoachConfig low;
  low.alpha = 0.2;
  CoachConfig high;
  high.alpha = 0.9;
  const CoachLm small = CoachTrainer(low).Train(*revisions_);
  const CoachLm large = CoachTrainer(high).Train(*revisions_);
  EXPECT_LT(small.rules().train_pairs, large.rules().train_pairs);
}

TEST_F(CoachTrainerTest, HighAlphaDilutesExpansionAggressiveness) {
  // The Fig. 5(a) mechanism: near-identity pairs in C_1 lower the learned
  // expansion statistics relative to C_0.3.
  CoachConfig focused;
  focused.alpha = 0.3;
  CoachConfig diluted;
  diluted.alpha = 1.0;
  const CoachLm sharp = CoachTrainer(focused).Train(*revisions_);
  const CoachLm soft = CoachTrainer(diluted).Train(*revisions_);
  EXPECT_GT(sharp.rules().mean_appended_sentences,
            soft.rules().mean_appended_sentences);
}

TEST_F(CoachTrainerTest, TrainingIsDeterministic) {
  CoachConfig config;
  config.alpha = 0.4;
  const CoachLm a = CoachTrainer(config).Train(*revisions_);
  const CoachLm b = CoachTrainer(config).Train(*revisions_);
  EXPECT_EQ(a.rules().ToJson().Dump(), b.rules().ToJson().Dump());
}

}  // namespace
}  // namespace coach
}  // namespace coachlm
