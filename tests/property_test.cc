// Cross-cutting property suites: randomized invariants that span modules.

#include <gtest/gtest.h>

#include "coach/pipeline.h"
#include "common/rng.h"
#include "expert/filtering.h"
#include "expert/pipeline.h"
#include "json/json.h"
#include "quality/accuracy_rater.h"
#include "synth/generator.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace {

// --- JSON: randomized dump/parse round trip ---

json::Value RandomJson(Rng* rng, int depth) {
  const size_t kind = rng->NextBelow(depth > 3 ? 4 : 6);
  switch (kind) {
    case 0:
      return json::Value();
    case 1:
      return json::Value(rng->NextBool(0.5));
    case 2:
      return json::Value(rng->NextDouble(-1e6, 1e6));
    case 3: {
      std::string s;
      const size_t len = rng->NextBelow(12);
      for (size_t i = 0; i < len; ++i) {
        // Include escapes and control characters.
        static const char kChars[] = "ab\"\\\n\t\r xyz{}[]:,";
        s += kChars[rng->NextBelow(sizeof(kChars) - 1)];
      }
      return json::Value(std::move(s));
    }
    case 4: {
      json::Array array;
      const size_t n = rng->NextBelow(4);
      for (size_t i = 0; i < n; ++i) array.push_back(RandomJson(rng, depth + 1));
      return json::Value(std::move(array));
    }
    default: {
      json::Object object;
      const size_t n = rng->NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        object["k" + std::to_string(i)] = RandomJson(rng, depth + 1);
      }
      return json::Value(std::move(object));
    }
  }
}

class JsonRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripProperty, DumpParseDumpIsStable) {
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const json::Value value = RandomJson(&rng, 0);
    const std::string dumped = value.Dump();
    auto parsed = json::Parse(dumped);
    ASSERT_TRUE(parsed.ok()) << dumped;
    EXPECT_EQ(parsed->Dump(), dumped);
    auto pretty = json::Parse(value.DumpPretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty->Dump(), dumped);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 16));

// --- Tokenizer: detokenized text is a fixpoint ---

class TokenizerFixpointProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(TokenizerFixpointProperty, DetokenizeTokenizeDetokenizeIsStable) {
  synth::CorpusConfig config;
  config.size = 30;
  config.seed = GetParam();
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  for (const InstructionPair& pair : corpus.dataset) {
    // One tokenize/detokenize pass normalizes spacing; a second pass must
    // be the identity on the normalized form (single-line texts only —
    // tokenization legitimately flattens newlines).
    if (pair.output.find('\n') != std::string::npos) continue;
    const std::string once =
        tokenizer::Detokenize(tokenizer::WordTokenize(pair.output));
    const std::string twice =
        tokenizer::Detokenize(tokenizer::WordTokenize(once));
    EXPECT_EQ(once, twice) << pair.output;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFixpointProperty,
                         ::testing::Values(101, 102, 103, 104));

// --- Coach: revising an already-revised dataset must not degrade it ---

TEST(CoachIdempotenceProperty, SecondRevisionPassDoesNotDegradeQuality) {
  synth::CorpusConfig config;
  config.size = 1500;
  config.seed = 42;
  synth::SynthCorpusGenerator generator(config);
  const auto corpus = generator.Generate();
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = 500;
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);
  coach::CoachConfig coach_config;
  const auto first =
      coach::RunCoachPipeline(corpus.dataset, study.revisions, coach_config);
  coach::RevisionPassStats stats;
  const auto second =
      first.model->ReviseDataset(first.revised_dataset, {}, &stats);
  quality::AccuracyRater rater;
  const double after_first = rater.RateDataset(first.revised_dataset).mean;
  const double after_second = rater.RateDataset(second).mean;
  EXPECT_GE(after_second, after_first - 0.05);
}

// --- Pipeline: revision must never break well-formedness ---

TEST(CoachSafetyProperty, RevisionPreservesWellFormedness) {
  synth::CorpusConfig config;
  config.size = 1200;
  config.seed = 7;
  synth::SynthCorpusGenerator generator(config);
  const auto corpus = generator.Generate();
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = 400;
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);
  const auto result = coach::RunCoachPipeline(corpus.dataset,
                                              study.revisions, {});
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    // The post-processor guarantees a non-degenerate pair: either the
    // revision parsed cleanly or the original was adopted.
    if (corpus.dataset[i].IsWellFormed()) {
      EXPECT_TRUE(result.revised_dataset[i].IsWellFormed())
          << "id " << corpus.dataset[i].id;
    }
  }
}

// --- Expert: revised pairs never score worse than their originals ---

TEST(ExpertMonotonicityProperty, RevisionNeverLowersCombinedScore) {
  synth::CorpusConfig config;
  config.size = 1200;
  config.seed = 11;
  synth::SynthCorpusGenerator generator(config);
  const auto corpus = generator.Generate();
  expert::ExpertReviser reviser(&generator.engine());
  expert::PreliminaryFilter filter;
  Rng rng(5);
  size_t checked = 0;
  for (size_t i = 0; i < 400; ++i) {
    // The study filters exclusion-class pairs before revision; the
    // monotonicity guarantee only covers revisable pairs.
    if (filter.Classify(corpus.dataset[i]).has_value()) continue;
    const auto outcome = reviser.Revise(corpus.dataset[i], &rng);
    if (!outcome.revised) continue;
    ++checked;
    const double before =
        quality::ScorePair(corpus.dataset[i]).Combined();
    EXPECT_GE(outcome.final_quality.Combined(), before - 1e-9)
        << corpus.dataset[i].FullInstruction();
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace coachlm
