#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/execution.h"
#include "common/rng.h"

namespace coachlm {
namespace {

InstructionDataset MakeDataset(size_t n) {
  InstructionDataset ds;
  for (size_t i = 0; i < n; ++i) {
    InstructionPair pair;
    pair.id = i + 1;
    pair.instruction = "Explain topic " + std::to_string(i) + ".";
    pair.output = "Topic " + std::to_string(i) + " explained fully.";
    pair.category =
        static_cast<Category>(i % kNumCategories);
    ds.Add(std::move(pair));
  }
  return ds;
}

TEST(DatasetTest, SizeAndIndexing) {
  const InstructionDataset ds = MakeDataset(5);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds[2].id, 3u);
}

TEST(DatasetTest, FindById) {
  const InstructionDataset ds = MakeDataset(5);
  auto found = ds.FindById(4);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, 4u);
  EXPECT_FALSE(ds.FindById(99).ok());
}

TEST(DatasetTest, StatsCountCategoriesAndLengths) {
  const InstructionDataset ds = MakeDataset(84);
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_EQ(stats.size, 84u);
  EXPECT_EQ(stats.category_counts.size(), kNumCategories);
  EXPECT_GT(stats.avg_instruction_words, 2.0);
  EXPECT_GT(stats.avg_response_words, 2.0);
}

TEST(DatasetTest, EmptyStats) {
  const DatasetStats stats = InstructionDataset().ComputeStats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.avg_response_words, 0.0);
}

TEST(DatasetTest, SampleWithoutReplacement) {
  const InstructionDataset ds = MakeDataset(100);
  Rng rng(3);
  const InstructionDataset sample = ds.SampleWithoutReplacement(10, &rng);
  EXPECT_EQ(sample.size(), 10u);
  // Unique ids, original relative order preserved.
  uint64_t prev = 0;
  for (const InstructionPair& pair : sample) {
    EXPECT_GT(pair.id, prev);
    prev = pair.id;
  }
  // Requesting more than available returns everything.
  Rng rng2(3);
  EXPECT_EQ(ds.SampleWithoutReplacement(1000, &rng2).size(), 100u);
}

TEST(DatasetTest, FilterByCategory) {
  const InstructionDataset ds = MakeDataset(84);
  const auto subset = ds.FilterByCategory(Category::kSummarization);
  EXPECT_EQ(subset.size(), 2u);
  for (const InstructionPair& pair : subset) {
    EXPECT_EQ(pair.category, Category::kSummarization);
  }
}

TEST(DatasetTest, JsonRoundTrip) {
  const InstructionDataset ds = MakeDataset(7);
  auto parsed = InstructionDataset::FromJson(ds.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*parsed)[i], ds[i]);
}

TEST(DatasetTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "coachlm_ds_test.json")
          .string();
  const InstructionDataset ds = MakeDataset(3);
  ASSERT_TRUE(ds.SaveJson(path).ok());
  auto loaded = InstructionDataset::LoadJson(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  std::remove(path.c_str());
}

TEST(DatasetTest, FromJsonRejectsNonArray) {
  EXPECT_FALSE(InstructionDataset::FromJson("{\"not\": \"array\"}").ok());
  EXPECT_FALSE(InstructionDataset::FromJson("garbage").ok());
  EXPECT_FALSE(InstructionDataset::FromJson("[{\"bad\": 1}]").ok());
}

TEST(DatasetTest, FindByIdMissingIsNotFound) {
  const InstructionDataset ds = MakeDataset(4);
  const auto missing = ds.FindById(999);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(InstructionDataset().FindById(1).ok());
}

// Sharded iteration order now feeds both lookups and sampling, so pin
// down that neither depends on the executor's thread count: assemble the
// dataset through per-shard slices, then exercise FindById under 1/2/8
// worker threads and re-sample with a fixed seed at each width.
TEST(DatasetTest, FindByIdAndSamplingDeterministicAcrossThreadCounts) {
  const InstructionDataset ds = MakeDataset(30);

  Rng baseline_rng(7);
  const InstructionDataset baseline_sample =
      ds.SampleWithoutReplacement(12, &baseline_rng);
  ASSERT_EQ(baseline_sample.size(), 12u);

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const ExecutionContext exec(threads);

    // Every id must resolve to the same pair no matter how the lookup
    // work is spread over workers.
    const std::vector<uint64_t> found =
        exec.ParallelMap(ds.size(), [&](size_t i) {
          const auto pair = ds.FindById(ds[i].id);
          EXPECT_TRUE(pair.ok());
          return pair.ok() ? pair->id : uint64_t{0};
        });
    for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ(found[i], ds[i].id);

    // Sampling takes an explicit Rng, so the draw must be a pure function
    // of (dataset order, seed) — identical at every thread width.
    Rng rng(7);
    const InstructionDataset sample = ds.SampleWithoutReplacement(12, &rng);
    ASSERT_EQ(sample.size(), baseline_sample.size());
    for (size_t i = 0; i < sample.size(); ++i) {
      EXPECT_EQ(sample[i], baseline_sample[i]) << "thread width " << threads;
    }
  }
}

}  // namespace
}  // namespace coachlm
