#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace coachlm {
namespace {

InstructionDataset MakeDataset(size_t n) {
  InstructionDataset ds;
  for (size_t i = 0; i < n; ++i) {
    InstructionPair pair;
    pair.id = i + 1;
    pair.instruction = "Explain topic " + std::to_string(i) + ".";
    pair.output = "Topic " + std::to_string(i) + " explained fully.";
    pair.category =
        static_cast<Category>(i % kNumCategories);
    ds.Add(std::move(pair));
  }
  return ds;
}

TEST(DatasetTest, SizeAndIndexing) {
  const InstructionDataset ds = MakeDataset(5);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds[2].id, 3u);
}

TEST(DatasetTest, FindById) {
  const InstructionDataset ds = MakeDataset(5);
  auto found = ds.FindById(4);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, 4u);
  EXPECT_FALSE(ds.FindById(99).ok());
}

TEST(DatasetTest, StatsCountCategoriesAndLengths) {
  const InstructionDataset ds = MakeDataset(84);
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_EQ(stats.size, 84u);
  EXPECT_EQ(stats.category_counts.size(), kNumCategories);
  EXPECT_GT(stats.avg_instruction_words, 2.0);
  EXPECT_GT(stats.avg_response_words, 2.0);
}

TEST(DatasetTest, EmptyStats) {
  const DatasetStats stats = InstructionDataset().ComputeStats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.avg_response_words, 0.0);
}

TEST(DatasetTest, SampleWithoutReplacement) {
  const InstructionDataset ds = MakeDataset(100);
  Rng rng(3);
  const InstructionDataset sample = ds.SampleWithoutReplacement(10, &rng);
  EXPECT_EQ(sample.size(), 10u);
  // Unique ids, original relative order preserved.
  uint64_t prev = 0;
  for (const InstructionPair& pair : sample) {
    EXPECT_GT(pair.id, prev);
    prev = pair.id;
  }
  // Requesting more than available returns everything.
  Rng rng2(3);
  EXPECT_EQ(ds.SampleWithoutReplacement(1000, &rng2).size(), 100u);
}

TEST(DatasetTest, FilterByCategory) {
  const InstructionDataset ds = MakeDataset(84);
  const auto subset = ds.FilterByCategory(Category::kSummarization);
  EXPECT_EQ(subset.size(), 2u);
  for (const InstructionPair& pair : subset) {
    EXPECT_EQ(pair.category, Category::kSummarization);
  }
}

TEST(DatasetTest, JsonRoundTrip) {
  const InstructionDataset ds = MakeDataset(7);
  auto parsed = InstructionDataset::FromJson(ds.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) EXPECT_EQ((*parsed)[i], ds[i]);
}

TEST(DatasetTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "coachlm_ds_test.json")
          .string();
  const InstructionDataset ds = MakeDataset(3);
  ASSERT_TRUE(ds.SaveJson(path).ok());
  auto loaded = InstructionDataset::LoadJson(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  std::remove(path.c_str());
}

TEST(DatasetTest, FromJsonRejectsNonArray) {
  EXPECT_FALSE(InstructionDataset::FromJson("{\"not\": \"array\"}").ok());
  EXPECT_FALSE(InstructionDataset::FromJson("garbage").ok());
  EXPECT_FALSE(InstructionDataset::FromJson("[{\"bad\": 1}]").ok());
}

}  // namespace
}  // namespace coachlm
