#include "text/string_util.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace strings {
namespace {

TEST(StringUtilTest, Lower) {
  EXPECT_EQ(Lower("AbC 123!"), "abc 123!");
  EXPECT_EQ(Lower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,b,,c", ',', true),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("instruction", "inst"));
  EXPECT_FALSE(StartsWith("in", "inst"));
  EXPECT_TRUE(EndsWith("response", "onse"));
  EXPECT_FALSE(EndsWith("se", "onse"));
  EXPECT_TRUE(Contains("abcdef", "cde"));
  EXPECT_FALSE(Contains("abc", "xyz"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("teh cat and teh dog", "teh", "the"),
            "the cat and the dog");
  EXPECT_EQ(ReplaceAll("aaa", "a", "aa"), "aaaaaa");  // no infinite loop
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringUtilTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  a \t b\n\nc "), "a b c");
}

TEST(StringUtilTest, Capitalize) {
  EXPECT_EQ(Capitalize("hello world"), "Hello world");
  EXPECT_EQ(Capitalize("  \"quoted\""), "  \"Quoted\"");
  EXPECT_EQ(Capitalize("1. item"), "1. item");  // digits stop the search
  EXPECT_EQ(Capitalize(""), "");
}

TEST(StringUtilTest, CountWords) {
  EXPECT_EQ(CountWords("one two  three\nfour"), 4u);
  EXPECT_EQ(CountWords(""), 0u);
  EXPECT_EQ(CountWords("   "), 0u);
  EXPECT_EQ(CountWords("single"), 1u);
}

}  // namespace
}  // namespace strings
}  // namespace coachlm
