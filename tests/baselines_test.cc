#include "tuning/baselines.h"

#include <gtest/gtest.h>

#include "quality/accuracy_rater.h"
#include "synth/generator.h"
#include "text/string_util.h"

namespace coachlm {
namespace tuning {
namespace {

synth::SynthCorpus SmallCorpus() {
  synth::CorpusConfig config;
  // Large enough that per-category survival rates (a few percent of the
  // corpus are code-related) are stable statistics, not sampling noise.
  config.size = 12000;
  config.seed = 42;
  return synth::SynthCorpusGenerator(config).Generate();
}

TEST(BaselinesTest, RuleCleaningKeepsEveryPair) {
  const auto corpus = SmallCorpus();
  const InstructionDataset cleaned = CleanDatasetRuleBased(corpus.dataset);
  ASSERT_EQ(cleaned.size(), corpus.dataset.size());
  for (size_t i = 0; i < cleaned.size(); ++i) {
    EXPECT_EQ(cleaned[i].id, corpus.dataset[i].id);
    // Surface-only cleaning never touches the instruction side.
    EXPECT_EQ(cleaned[i].instruction, corpus.dataset[i].instruction);
  }
}

TEST(BaselinesTest, RuleCleaningStripsMachineMarkers) {
  const auto corpus = SmallCorpus();
  const InstructionDataset cleaned = CleanDatasetRuleBased(corpus.dataset);
  for (const InstructionPair& pair : cleaned) {
    EXPECT_FALSE(strings::Contains(pair.output, "OUTPUT:"));
  }
}

TEST(BaselinesTest, RuleCleaningImprovesQualityOnlySlightly) {
  // Alpaca-cleaned barely moves the needle (Table IX): surface fixes
  // cannot repair content defects.
  const auto corpus = SmallCorpus();
  quality::AccuracyRater rater;
  const double before = rater.RateDataset(corpus.dataset).mean;
  const double after =
      rater.RateDataset(CleanDatasetRuleBased(corpus.dataset)).mean;
  EXPECT_GE(after, before);
  EXPECT_LT(after - before, 0.15);
}

TEST(BaselinesTest, AlpaGasusFilterKeepsHighRatedMinority) {
  const auto corpus = SmallCorpus();
  const InstructionDataset filtered = FilterAlpaGasus(corpus.dataset);
  // ~17.7% survive the 4.5 threshold.
  const double share =
      static_cast<double>(filtered.size()) / corpus.dataset.size();
  EXPECT_GT(share, 0.08);
  EXPECT_LT(share, 0.35);
  quality::AccuracyRater rater;
  for (const InstructionPair& pair : filtered) {
    EXPECT_GE(rater.Rate(pair), 4.5);
  }
}

TEST(BaselinesTest, AlpaGasusGutsCodeCoverage) {
  // The Section II-A(3) diversity cost: code pairs are filtered away
  // disproportionately.
  const auto corpus = SmallCorpus();
  const InstructionDataset filtered = FilterAlpaGasus(corpus.dataset);
  const auto before = corpus.dataset.ComputeStats().category_counts;
  const auto after = filtered.ComputeStats().category_counts;
  auto survival = [&](Category c) {
    const auto it = after.find(c);
    const double kept = it == after.end() ? 0.0 : it->second;
    return kept / static_cast<double>(before.at(c));
  };
  const double overall =
      static_cast<double>(filtered.size()) / corpus.dataset.size();
  // Code pairs survive the rating filter at well below the overall rate
  // (the "high filtering ratio of code-related instruction pairs" the
  // paper attributes AlpaGasus' coding weakness to).
  EXPECT_LT(survival(Category::kCoding), overall * 0.8);
  EXPECT_LT(survival(Category::kDebuggingHelp), overall * 0.8);
}

TEST(BaselinesTest, FilterThresholdIsRespected) {
  const auto corpus = SmallCorpus();
  EXPECT_EQ(FilterAlpaGasus(corpus.dataset, 5.1).size(), 0u);
  EXPECT_EQ(FilterAlpaGasus(corpus.dataset, 0.0).size(),
            corpus.dataset.size());
}

}  // namespace
}  // namespace tuning
}  // namespace coachlm
