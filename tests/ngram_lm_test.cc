#include "text/ngram_lm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/topic_bank.h"

namespace coachlm {
namespace {

NgramLm TrainedOnTopics() {
  NgramLm lm(3);
  for (const synth::Topic& topic : synth::Topics()) {
    lm.AddText(topic.fact);
    for (const std::string& d : topic.details) lm.AddText(d);
  }
  return lm;
}

TEST(NgramLmTest, UntrainedModelSentinels) {
  NgramLm lm;
  EXPECT_EQ(lm.train_tokens(), 0u);
  EXPECT_GE(lm.Perplexity("anything"), 1e9);
  Rng rng(1);
  EXPECT_TRUE(lm.Sample({}, 10, &rng).empty());
}

TEST(NgramLmTest, TrainingAccumulatesTokens) {
  NgramLm lm;
  lm.AddText("The cat sat on the mat.");
  EXPECT_GT(lm.train_tokens(), 5u);
}

TEST(NgramLmTest, SeenTextHasLowerPerplexityThanGibberish) {
  NgramLm lm = TrainedOnTopics();
  const double seen = lm.Perplexity(
      "The water cycle moves water through evaporation, condensation, and "
      "precipitation.");
  const double gibberish = lm.Perplexity("zzq qqz plof grok mnop xyzzy");
  EXPECT_LT(seen, gibberish);
}

TEST(NgramLmTest, SentenceLogProbIsNegativeAndFinite) {
  NgramLm lm = TrainedOnTopics();
  const double logp = lm.SentenceLogProb({"water", "vapor", "condenses"});
  EXPECT_LT(logp, 0.0);
  EXPECT_GT(logp, -1e6);
}

TEST(NgramLmTest, SamplingIsDeterministicGivenSeed) {
  NgramLm lm = TrainedOnTopics();
  Rng r1(77);
  Rng r2(77);
  EXPECT_EQ(lm.Sample({"water"}, 12, &r1), lm.Sample({"water"}, 12, &r2));
}

TEST(NgramLmTest, SampleRespectsMaxTokens) {
  NgramLm lm = TrainedOnTopics();
  Rng rng(5);
  EXPECT_LE(lm.Sample({"the"}, 6, &rng).size(), 6u);
  EXPECT_TRUE(lm.Sample({"the"}, 0, &rng).empty());
}

TEST(NgramLmTest, LowTemperaturePrefersLikelyTokens) {
  NgramLm lm(2);
  // "alpha beta" appears 9 times, "alpha gamma" once.
  for (int i = 0; i < 9; ++i) lm.AddSentence({"alpha", "beta"});
  lm.AddSentence({"alpha", "gamma"});
  Rng rng(3);
  int beta = 0;
  for (int i = 0; i < 100; ++i) {
    const auto out = lm.Sample({"alpha"}, 1, &rng, 0.2);
    if (!out.empty() && out[0] == "beta") ++beta;
  }
  EXPECT_GT(beta, 80);
}

TEST(VocabTest, ReservedIdsAndLookup) {
  Vocab vocab;
  EXPECT_EQ(vocab.size(), 3u);
  const uint32_t id = vocab.Add("hello");
  EXPECT_EQ(vocab.Add("hello"), id);  // idempotent
  EXPECT_EQ(vocab.Lookup("hello"), id);
  EXPECT_EQ(vocab.Lookup("unseen"), Vocab::kUnk);
  EXPECT_EQ(vocab.Token(id), "hello");
  EXPECT_EQ(vocab.Token(9999), "<unk>");
}

TEST(VocabTest, EncodeMapsUnknowns) {
  Vocab vocab;
  vocab.Add("a");
  const auto ids = vocab.Encode({"a", "b"});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], Vocab::kUnk);
  EXPECT_EQ(ids[1], Vocab::kUnk);
}

}  // namespace
}  // namespace coachlm
