#include "common/table_writer.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace {

TEST(TableWriterTest, FormatsNumbers) {
  EXPECT_EQ(TableWriter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Num(3.0, 0), "3");
  EXPECT_EQ(TableWriter::Pct(0.177), "17.7%");
  EXPECT_EQ(TableWriter::Pct(1.0, 0), "100%");
}

TEST(TableWriterTest, AsciiContainsCellsAndRules) {
  TableWriter t({"Model", "WR1"});
  t.AddRow({"Alpaca", "48.0%"});
  t.AddSeparator();
  t.AddRow({"Alpaca-CoachLM", "67.7%"});
  const std::string out = t.ToAscii();
  EXPECT_NE(out.find("| Model"), std::string::npos);
  EXPECT_NE(out.find("| Alpaca "), std::string::npos);
  EXPECT_NE(out.find("67.7%"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TableWriterTest, ShortRowsPadAndLongRowsTruncate) {
  TableWriter t({"a", "b"});
  t.AddRow({"only"});
  t.AddRow({"x", "y", "dropped"});
  const std::string out = t.ToAscii();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TableWriterTest, MarkdownHasHeaderSeparator) {
  TableWriter t({"h1", "h2"});
  t.AddRow({"v1", "v2"});
  const std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| h1"), std::string::npos);
  EXPECT_NE(md.find("|--"), std::string::npos);
  EXPECT_NE(md.find("| v1"), std::string::npos);
}

TEST(TableWriterTest, ColumnWidthsFitLongestCell) {
  TableWriter t({"h"});
  t.AddRow({"very-long-cell-content"});
  const std::string out = t.ToAscii();
  // Every line should have the same length (aligned box).
  size_t width = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

}  // namespace
}  // namespace coachlm
