#include "tuning/tuned_model.h"

#include <gtest/gtest.h>

#include "quality/criteria.h"
#include "tuning/model_zoo.h"

namespace coachlm {
namespace tuning {
namespace {

InstructionPair Task(Category category, const std::string& instruction) {
  InstructionPair task;
  task.id = 1;
  task.category = category;
  task.instruction = instruction;
  return task;
}

TEST(TunedModelTest, QualityMonotoneInAlignment) {
  const ModelSpec base = Llama7BBase("m");
  const TunedModel weak(base, UniformProfile(0.70, 0.9));
  const TunedModel strong(base, UniformProfile(0.90, 0.9));
  for (Category c : AllCategories()) {
    EXPECT_LT(weak.QualityFor(c), strong.QualityFor(c));
  }
}

TEST(TunedModelTest, QualityMonotoneInBaseKnowledge) {
  const AlignmentProfile profile = UniformProfile(0.85, 0.9);
  ModelSpec small = Llama7BBase("s");
  ModelSpec big = Llama13BBase("b");
  EXPECT_LT(TunedModel(small, profile).QualityFor(Category::kGeneralQa),
            TunedModel(big, profile).QualityFor(Category::kGeneralQa));
}

TEST(TunedModelTest, UnseenCategoryWeakerThanCovered) {
  AlignmentProfile profile;
  profile.global_quality = 0.85;
  profile.per_category[Category::kGeneralQa] = {0.85, 0.95};
  // kCoding absent from training.
  const TunedModel model(Llama7BBase("m"), profile);
  EXPECT_GT(model.QualityFor(Category::kGeneralQa),
            model.QualityFor(Category::kCoding) + 0.05);
}

TEST(TunedModelTest, RespondIsDeterministicGivenSeed) {
  const TunedModel model(Llama7BBase("m"), UniformProfile(0.85, 0.9));
  const InstructionPair task =
      Task(Category::kGeneralQa, "What is photosynthesis?");
  Rng r1(9), r2(9);
  EXPECT_EQ(model.Respond(task, &r1), model.Respond(task, &r2));
}

TEST(TunedModelTest, StrongerModelsProduceBetterResponses) {
  const TunedModel weak(Llama7BBase("w"), UniformProfile(0.72, 0.85));
  const TunedModel strong(Llama13BBase("s"), UniformProfile(0.93, 0.97));
  quality::ResponseScorer scorer;
  double weak_sum = 0, strong_sum = 0;
  for (int i = 0; i < 60; ++i) {
    const InstructionPair task =
        Task(Category::kGeneralQa, "Explain the water cycle.");
    Rng rw(100 + i), rs(100 + i);
    InstructionPair wp = task, sp = task;
    wp.output = weak.Respond(task, &rw);
    sp.output = strong.Respond(task, &rs);
    weak_sum += scorer.Score(wp).score;
    strong_sum += scorer.Score(sp).score;
  }
  EXPECT_GT(strong_sum, weak_sum + 100.0);  // >~1.7 points per response
}

TEST(TunedModelTest, RlTuningAvoidsRoboticTone) {
  ModelSpec rl = Llama7BBase("rl");
  rl.rl_tuned = true;
  const TunedModel model(rl, UniformProfile(0.80, 0.9));
  quality::ResponseScorer scorer;
  for (int i = 0; i < 80; ++i) {
    const InstructionPair task =
        Task(Category::kGeneralQa, "Explain gravity.");
    Rng rng(i);
    InstructionPair candidate = task;
    candidate.output = model.Respond(task, &rng);
    EXPECT_GT(scorer.Score(candidate)
                  .Satisfaction(quality::Dimension::kHumanization),
              0.1)
        << candidate.output;
  }
}

}  // namespace
}  // namespace tuning
}  // namespace coachlm
