#include "expert/experts.h"

#include <gtest/gtest.h>

#include <set>

namespace coachlm {
namespace expert {
namespace {

TEST(ExpertsTest, RosterMatchesTableOne) {
  EXPECT_EQ(Roster().size(), 26u);  // 17 + 6 + 3
  EXPECT_EQ(GroupMembers(ExpertGroup::kReviseA).size(), 17u);
  EXPECT_EQ(GroupMembers(ExpertGroup::kTestSetB).size(), 6u);
  EXPECT_EQ(GroupMembers(ExpertGroup::kEvaluateC).size(), 3u);
}

TEST(ExpertsTest, GroupExperienceAverages) {
  // Table I reports 11.29y for group A while Section II-E2's unit means
  // (9.4 / 11.2 / 13.1 over 6+6+5 experts) average to 11.12 — the paper's
  // own rounding gap. The roster satisfies the unit means exactly, so the
  // group mean is checked against the derivable value with slack covering
  // the reported one.
  EXPECT_NEAR(MeanExperience(GroupMembers(ExpertGroup::kReviseA)), 11.2,
              0.2);
  EXPECT_NEAR(MeanExperience(GroupMembers(ExpertGroup::kTestSetB)), 5.64,
              0.05);
  EXPECT_NEAR(MeanExperience(GroupMembers(ExpertGroup::kEvaluateC)), 12.57,
              0.05);
}

TEST(ExpertsTest, UnitStaffingByExpertise) {
  // Section II-E2: unit experience rises with revision difficulty.
  const double language = MeanExperience(UnitMembers(TaskClass::kLanguageTask));
  const double qa = MeanExperience(UnitMembers(TaskClass::kQa));
  const double creative = MeanExperience(UnitMembers(TaskClass::kCreative));
  EXPECT_NEAR(language, 9.4, 0.1);
  EXPECT_NEAR(qa, 11.2, 0.1);
  EXPECT_NEAR(creative, 13.1, 0.1);
  EXPECT_LT(language, qa);
  EXPECT_LT(qa, creative);
}

TEST(ExpertsTest, IdsUnique) {
  std::set<size_t> ids;
  for (const Expert& expert : Roster()) {
    EXPECT_TRUE(ids.insert(expert.id).second);
  }
}

TEST(ExpertsTest, MeanExperienceOfEmptyIsZero) {
  EXPECT_EQ(MeanExperience({}), 0.0);
}

}  // namespace
}  // namespace expert
}  // namespace coachlm
