#include "common/fault.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/clock.h"

namespace coachlm {
namespace {

TEST(FaultSiteTest, NamesRoundTrip) {
  for (int s = 0; s < kNumFaultSites; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    const auto parsed = FaultSiteFromString(FaultSiteToString(site));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, site);
  }
  // COACHLM_LINT_ALLOW(registry-unknown-name): deliberately bogus site name exercising the rejection path.
  EXPECT_FALSE(FaultSiteFromString("warp-core").ok());
}

TEST(FaultPlanTest, DefaultIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanTest, ParseEmptyIsInactive) {
  const auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->active());
}

TEST(FaultPlanTest, ParseBareRate) {
  const auto plan = FaultPlan::Parse("0.05");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->transient_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->permanent_rate, 0.0);
  EXPECT_EQ(plan->site_mask, kAllFaultSites);
  EXPECT_TRUE(plan->active());
}

TEST(FaultPlanTest, ParseFullSpec) {
  const auto plan = FaultPlan::Parse(
      "rate=0.1,permanent=0.01,seed=7,latency_us=250,continuation=0.5,"
      "sites=revise+io");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->transient_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan->permanent_rate, 0.01);
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_EQ(plan->latency_us, 250);
  EXPECT_DOUBLE_EQ(plan->burst_continuation, 0.5);
  EXPECT_EQ(plan->site_mask,
            FaultSiteBit(FaultSite::kRevise) | FaultSiteBit(FaultSite::kIo));
}

TEST(FaultPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultPlan::Parse("rate=lots").ok());
  EXPECT_FALSE(FaultPlan::Parse("sites=warp").ok());
  EXPECT_FALSE(FaultPlan::Parse("nonsense=1").ok());
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  const auto plan = FaultPlan::Parse("rate=0.05,permanent=0.002,seed=9");
  ASSERT_TRUE(plan.ok());
  const auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_DOUBLE_EQ(reparsed->transient_rate, plan->transient_rate);
  EXPECT_DOUBLE_EQ(reparsed->permanent_rate, plan->permanent_rate);
  EXPECT_EQ(reparsed->seed, plan->seed);
  EXPECT_EQ(reparsed->site_mask, plan->site_mask);
}

TEST(FaultInjectorTest, DisabledInjectsNothing) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_TRUE(injector.Inject(FaultSite::kRevise, id, 1).ok());
  }
}

TEST(FaultInjectorTest, InjectIsAPureFunctionOfItsArguments) {
  FaultPlan plan;
  plan.transient_rate = 0.2;
  plan.permanent_rate = 0.02;
  FaultInjector injector(plan);
  // Calling in any order, any number of times, yields the same statuses.
  std::vector<Status> forward;
  for (uint64_t id = 0; id < 200; ++id) {
    forward.push_back(injector.Inject(FaultSite::kRevise, id, 1));
  }
  for (uint64_t id = 200; id-- > 0;) {
    EXPECT_EQ(injector.Inject(FaultSite::kRevise, id, 1), forward[id]);
  }
}

TEST(FaultInjectorTest, TransientRateIsApproximatelyHonored) {
  FaultPlan plan;
  plan.transient_rate = 0.05;
  FaultInjector injector(plan);
  size_t failed = 0;
  for (uint64_t id = 0; id < 10000; ++id) {
    if (!injector.Inject(FaultSite::kRevise, id, 1).ok()) ++failed;
  }
  EXPECT_GT(failed, 350u);
  EXPECT_LT(failed, 650u);
}

TEST(FaultInjectorTest, TransientBurstsAreBounded) {
  // Every transient burst clears within kMaxTransientBurst attempts, so a
  // policy with kMaxTransientBurst + 1 attempts always recovers.
  FaultPlan plan;
  plan.transient_rate = 0.3;
  plan.burst_continuation = 0.95;  // long geometric tail, still capped
  FaultInjector injector(plan);
  for (uint64_t id = 0; id < 2000; ++id) {
    const Status attempt_after_burst =
        injector.Inject(FaultSite::kParse, id, kMaxTransientBurst + 1);
    EXPECT_TRUE(attempt_after_burst.ok()) << "item " << id;
  }
}

TEST(FaultInjectorTest, PermanentFaultsFailEveryAttempt) {
  FaultPlan plan;
  plan.permanent_rate = 0.05;
  FaultInjector injector(plan);
  size_t doomed = 0;
  for (uint64_t id = 0; id < 2000; ++id) {
    if (injector.Inject(FaultSite::kJudge, id, 1).ok()) continue;
    ++doomed;
    for (int attempt = 2; attempt <= 8; ++attempt) {
      EXPECT_FALSE(injector.Inject(FaultSite::kJudge, id, attempt).ok());
    }
  }
  EXPECT_GT(doomed, 0u);
}

TEST(FaultInjectorTest, InjectedTransientCodesAreTransient) {
  FaultPlan plan;
  plan.transient_rate = 0.5;
  FaultInjector injector(plan);
  std::set<StatusCode> seen;
  for (uint64_t id = 0; id < 500; ++id) {
    const Status status = injector.Inject(FaultSite::kIo, id, 1);
    if (status.ok()) continue;
    EXPECT_TRUE(status.IsTransient()) << status.ToString();
    seen.insert(status.code());
  }
  // The injector rotates through all three transient codes.
  EXPECT_EQ(seen.size(), 3u);
}

TEST(FaultInjectorTest, SiteMaskRestrictsInjection) {
  FaultPlan plan;
  plan.transient_rate = 1.0;
  plan.site_mask = FaultSiteBit(FaultSite::kRevise);
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.Inject(FaultSite::kRevise, 1, 1).ok());
  EXPECT_TRUE(injector.Inject(FaultSite::kCollect, 1, 1).ok());
  EXPECT_TRUE(injector.Inject(FaultSite::kIo, 1, 1).ok());
}

TEST(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  FaultPlan plan;
  plan.transient_rate = 0.2;
  FaultInjector injector(plan);
  size_t differing = 0;
  for (uint64_t id = 0; id < 500; ++id) {
    const bool a = injector.Inject(FaultSite::kCollect, id, 1).ok();
    const bool b = injector.Inject(FaultSite::kRevise, id, 1).ok();
    if (a != b) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjectorTest, LatencySleepsTheClockOnFailure) {
  FaultPlan plan;
  plan.transient_rate = 1.0;
  plan.latency_us = 500;
  FaultInjector injector(plan);
  FakeClock clock;
  const int64_t before = clock.NowMicros();
  ASSERT_FALSE(injector.Inject(FaultSite::kTune, 42, 1, &clock).ok());
  EXPECT_EQ(clock.NowMicros() - before, 500);
}

TEST(FaultInjectorTest, StatsCountInjections) {
  FaultPlan plan;
  plan.transient_rate = 0.5;
  plan.permanent_rate = 0.05;
  FaultInjector injector(plan);
  for (uint64_t id = 0; id < 300; ++id) {
    injector.Inject(FaultSite::kRevise, id, 1).ok();
  }
  EXPECT_GT(injector.stats().transient_injected.load(), 0u);
  EXPECT_GT(injector.stats().permanent_injected.load(), 0u);
}

}  // namespace
}  // namespace coachlm
