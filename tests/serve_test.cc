// End-to-end coverage of the `coachlm serve` robustness layer: hostile
// HTTP envelopes, admission-control shedding, per-request deadlines, hot
// model reload (including torn artifacts), fault-plan injection through
// the serve.* sites, and graceful SIGTERM drain.

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "coach/coach_lm.h"
#include "coach/trainer.h"
#include "common/checkpoint.h"
#include "common/clock.h"
#include "common/execution.h"
#include "common/report.h"
#include "common/trace.h"
#include "expert/pipeline.h"
#include "json/jsonl.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/handler.h"
#include "serve/http.h"
#include "serve/model_host.h"
#include "serve/serve_config.h"
#include "serve/server.h"
#include "synth/generator.h"

namespace coachlm {
namespace serve {
namespace {

namespace fs = std::filesystem;

/// Shared pipeline state: a small trained coach saved as a checkpoint,
/// built once for the whole suite.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 600;
    config.seed = 42;
    synth::SynthCorpusGenerator generator(config);
    corpus_ = new synth::SynthCorpus(generator.Generate());
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 200;
    const auto study = expert::RunRevisionStudy(
        corpus_->dataset, generator.engine(), study_config);
    coach::CoachConfig coach_config;
    coach_config.alpha = 0.3;
    model_ = new coach::CoachLm(
        coach::CoachTrainer(coach_config).Train(study.revisions));
    checkpoint_path_ = new std::string(
        (fs::temp_directory_path() / "serve_test_coach.json").string());
    ASSERT_TRUE(model_->SaveCheckpoint(*checkpoint_path_).ok());
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove(*checkpoint_path_, ec);
    delete checkpoint_path_;
    delete model_;
    delete corpus_;
  }

  /// A fresh config pointing at the suite checkpoint.
  static ServeConfig Config() {
    ServeConfig config;
    config.port = 0;  // Ephemeral: tests never race for a fixed port.
    config.checkpoint = *checkpoint_path_;
    config.coach = model_->config();
    return config;
  }

  /// JSONL request body for the first \p n corpus pairs.
  static std::string BodyFor(size_t n) {
    std::string body;
    for (size_t i = 0; i < n && i < corpus_->dataset.size(); ++i) {
      body += corpus_->dataset[i].ToJson().Dump();
      body += '\n';
    }
    return body;
  }

  /// The batch-revision bytes for the same pairs: what /v1/revise must
  /// return byte-identically in deterministic mode.
  static std::string ExpectedFor(size_t n) {
    std::string expected;
    for (size_t i = 0; i < n && i < corpus_->dataset.size(); ++i) {
      const InstructionPair& pair = corpus_->dataset[i];
      Rng rng = DeriveRng(model_->config().seed, pair.id);
      expected += model_->Revise(pair, &rng).ToJson().Dump();
      expected += '\n';
    }
    return expected;
  }

  static HttpRequest Post(const std::string& target,
                          const std::string& body) {
    HttpRequest request;
    request.method = "POST";
    request.target = target;
    request.body = body;
    return request;
  }

  static HttpRequest Get(const std::string& target) {
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    return request;
  }

  static synth::SynthCorpus* corpus_;
  static coach::CoachLm* model_;
  static std::string* checkpoint_path_;
};

synth::SynthCorpus* ServeTest::corpus_ = nullptr;
coach::CoachLm* ServeTest::model_ = nullptr;
std::string* ServeTest::checkpoint_path_ = nullptr;

// ---------------------------------------------------------------------------
// HTTP parser: hostile envelopes become typed errors, never crashes.
// ---------------------------------------------------------------------------

TEST(HttpParser, ParsesPostWithBody) {
  const std::string raw =
      "POST /v1/revise HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
  Result<HttpRequest> parsed = ParseHttpRequest(raw);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->target, "/v1/revise");
  EXPECT_EQ(parsed->body, "hello");
  EXPECT_EQ(parsed->Header("host"), "x");
}

TEST(HttpParser, FeedsByteByByte) {
  const std::string raw =
      "GET /healthz HTTP/1.1\r\nAccept: any\r\n\r\n";
  HttpRequestParser parser;
  for (const char c : raw) {
    ASSERT_TRUE(parser.Feed(&c, 1).ok());
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().target, "/healthz");
}

TEST(HttpParser, MalformedRequestLineIsInvalidArgument) {
  Result<HttpRequest> parsed = ParseHttpRequest("GARBAGE\r\n\r\n");
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(HttpParser, UnsupportedVersionIsInvalidArgument) {
  Result<HttpRequest> parsed =
      ParseHttpRequest("GET / SMTP/3.0\r\n\r\n");
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(HttpParser, OversizedRequestLineIsResourceExhausted) {
  HttpLimits limits;
  limits.max_request_line_bytes = 64;
  const std::string raw =
      "GET /" + std::string(500, 'a') + " HTTP/1.1\r\n\r\n";
  Result<HttpRequest> parsed = ParseHttpRequest(raw, limits);
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(HttpParser, HeaderBombIsResourceExhausted) {
  HttpLimits limits;
  limits.max_headers = 4;
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 10; ++i) {
    raw += "h" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  Result<HttpRequest> parsed = ParseHttpRequest(raw, limits);
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(HttpParser, OversizedBodyRejectedBeforeBuffering) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  // The violation is detected from Content-Length alone: no body byte is
  // ever fed, yet the parser already refuses.
  HttpRequestParser parser(limits);
  const std::string head =
      "POST /v1/revise HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
  const Status status = parser.Feed(head.data(), head.size());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(HttpParser, GarbageContentLengthIsInvalidArgument) {
  Result<HttpRequest> parsed = ParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  parsed = ParseHttpRequest("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n");
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(HttpParser, ChunkedEncodingIsNotImplemented) {
  Result<HttpRequest> parsed = ParseHttpRequest(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotImplemented);
}

TEST(HttpParser, BytesPastContentLengthAreRejected) {
  HttpRequestParser parser;
  const std::string raw =
      "POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nhello";
  const Status status = parser.Feed(raw.data(), raw.size());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(HttpParser, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 429;
  response.headers["Retry-After"] = "1";
  response.body = "{\"x\":1}";
  Result<ParsedHttpResponse> parsed = ParseHttpResponse(response.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->status, 429);
  EXPECT_EQ(parsed->headers.at("retry-after"), "1");
  EXPECT_EQ(parsed->body, "{\"x\":1}");
}

// ---------------------------------------------------------------------------
// Admission queue: bounded, shedding, drains fully after Close.
// ---------------------------------------------------------------------------

TEST(AdmissionQueueTest, ShedsWhenFullAndDrainsAfterClose) {
  AdmissionQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // Full: shed, never block or grow.
  EXPECT_EQ(queue.peak(), 2u);
  queue.Shutdown();
  EXPECT_FALSE(queue.TryPush(4));  // Closed: no new admissions.
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // Admitted work still drains...
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // ...then consumers see the end.
}

// ---------------------------------------------------------------------------
// Model host: hot reload, torn artifacts.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ReloadBumpsVersionAndKeepsServing) {
  ModelHost host(*checkpoint_path_, model_->config());
  ASSERT_TRUE(host.Load().ok());
  EXPECT_EQ(host.version(), 1u);
  const auto before = host.Snapshot();
  ASSERT_NE(before, nullptr);
  EXPECT_TRUE(host.Reload().status.ok());
  EXPECT_EQ(host.version(), 2u);
  // The old snapshot stays valid for in-flight work after the swap.
  InstructionPair pair = corpus_->dataset[0];
  Rng rng = DeriveRng(before->config().seed, pair.id);
  EXPECT_TRUE(before->Revise(pair, &rng).IsWellFormed());
}

TEST_F(ServeTest, TornArtifactRejectedOldModelStaysLive) {
  const std::string torn_path =
      (fs::temp_directory_path() / "serve_test_torn.json").string();
  ASSERT_TRUE(json::ReadFile(*checkpoint_path_).ok());
  const std::string good = json::ReadFile(*checkpoint_path_).ValueOrDie();
  ASSERT_TRUE(AtomicWriteFile(torn_path, good).ok());

  ModelHost host(torn_path, model_->config());
  ASSERT_TRUE(host.Load().ok());
  const auto live = host.Snapshot();

  // Tear the artifact (truncate mid-document) and try to reload: the
  // reload must fail typed and the old model must keep serving.
  ASSERT_TRUE(AtomicWriteFile(torn_path, good.substr(0, good.size() / 2)).ok());
  const ModelHost::ReloadResult result = host.Reload();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(host.version(), 1u);
  EXPECT_EQ(host.Snapshot(), live);

  std::error_code ec;
  fs::remove(torn_path, ec);
}

// ---------------------------------------------------------------------------
// Handler: typed outcomes for every failure mode, byte-identity with batch.
// ---------------------------------------------------------------------------

/// Builds a loaded context over \p host for handler-level tests.
ServeContext ContextFor(const ServeConfig& config, ModelHost* host,
                        Clock* clock) {
  ServeContext context;
  context.config = &config;
  context.models = host;
  context.clock = clock;
  return context;
}

TEST_F(ServeTest, HealthzReportsModelVersion) {
  const ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  const HttpResponse response = HandleRequest(context, 1, Get("/healthz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"model_version\":1"), std::string::npos);
}

TEST_F(ServeTest, ServedRevisionIsByteIdenticalToBatch) {
  const ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  const HttpResponse response =
      HandleRequest(context, 1, Post("/v1/revise", BodyFor(8)));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, ExpectedFor(8));
}

TEST_F(ServeTest, TransientFaultsRetryToIdenticalBytes) {
  ServeConfig config = Config();
  // Every record suffers a transient burst at serve.revise; the retry
  // policy out-lasts the bounded burst, so the response bytes must equal
  // the fault-free run exactly.
  config.fault_plan =
      FaultPlan::Parse("rate=1.0,sites=serve.revise").ValueOrDie();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  const HttpResponse response =
      HandleRequest(context, 1, Post("/v1/revise", BodyFor(6)));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.body, ExpectedFor(6));
}

TEST_F(ServeTest, PermanentFaultsDegradeToOriginalPairs) {
  ServeConfig config = Config();
  config.fault_plan =
      FaultPlan::Parse("permanent=1.0,sites=serve.revise").ValueOrDie();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  const HttpResponse response =
      HandleRequest(context, 1, Post("/v1/revise", BodyFor(4)));
  ASSERT_EQ(response.status, 200) << response.body;
  // Graceful degradation mirrors the batch pass: originals come back.
  EXPECT_EQ(response.body, BodyFor(4));
}

TEST_F(ServeTest, DeadlineExpiryIsTyped504) {
  ServeConfig config = Config();
  config.request_deadline_ms = 100;
  // Injected latency (2x the budget) advances the fake clock past the
  // request deadline on the first attempt: deterministically a 504.
  config.fault_plan =
      FaultPlan::Parse("rate=1.0,latency_us=200000,sites=serve.revise")
          .ValueOrDie();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  FakeClock clock;
  const ServeContext context = ContextFor(config, &host, &clock);
  const HttpResponse response =
      HandleRequest(context, 1, Post("/v1/revise", BodyFor(3)));
  EXPECT_EQ(response.status, 504);
  EXPECT_NE(response.body.find("DeadlineExceeded"), std::string::npos);
}

TEST_F(ServeTest, HostileBodyIsTyped400) {
  const ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  const HttpResponse response = HandleRequest(
      context, 1, Post("/v1/revise", "{\"instruction\": [[[[\n"));
  EXPECT_EQ(response.status, 400);
  const HttpResponse not_pairs =
      HandleRequest(context, 2, Post("/v1/revise", "[1,2,3]\n"));
  EXPECT_EQ(not_pairs.status, 400);
}

TEST_F(ServeTest, OversizedRecordIsTyped413) {
  ServeConfig config = Config();
  config.parse_limits.max_record_bytes = 128;
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  const std::string huge = "{\"instruction\":\"" +
                           std::string(4096, 'a') + "\",\"output\":\"b\"}\n";
  const HttpResponse response =
      HandleRequest(context, 1, Post("/v1/revise", huge));
  EXPECT_EQ(response.status, 413);
}

TEST_F(ServeTest, ParseSiteFaultFailsTheEnvelope) {
  ServeConfig config = Config();
  config.fault_plan =
      FaultPlan::Parse("permanent=1.0,sites=serve.parse").ValueOrDie();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  const HttpResponse response =
      HandleRequest(context, 1, Post("/v1/revise", BodyFor(1)));
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("injected permanent fault"),
            std::string::npos);
}

TEST_F(ServeTest, UnknownRouteAndWrongMethodAreTyped) {
  const ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());
  EXPECT_EQ(HandleRequest(context, 1, Get("/nope")).status, 404);
  EXPECT_EQ(HandleRequest(context, 2, Get("/v1/revise")).status, 405);
  EXPECT_EQ(HandleRequest(context, 3, Post("/healthz", "")).status, 405);
}

TEST_F(ServeTest, AdminReloadEndpointSwapsAndRejectsTornArtifact) {
  const std::string path =
      (fs::temp_directory_path() / "serve_test_admin.json").string();
  const std::string good = json::ReadFile(*checkpoint_path_).ValueOrDie();
  ASSERT_TRUE(AtomicWriteFile(path, good).ok());
  ServeConfig config = Config();
  config.checkpoint = path;
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  const ServeContext context = ContextFor(config, &host, Clock::System());

  const HttpResponse ok_reload =
      HandleRequest(context, 1, Post("/admin/reload", ""));
  EXPECT_EQ(ok_reload.status, 200);
  EXPECT_NE(ok_reload.body.find("\"version\":2"), std::string::npos);

  ASSERT_TRUE(AtomicWriteFile(path, "{not json").ok());
  const HttpResponse bad_reload =
      HandleRequest(context, 2, Post("/admin/reload", ""));
  EXPECT_EQ(bad_reload.status, 503);
  EXPECT_EQ(host.version(), 2u);
  // The model from before the failed reload still serves byte-identically.
  const HttpResponse after =
      HandleRequest(context, 3, Post("/v1/revise", BodyFor(2)));
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body, ExpectedFor(2));

  std::error_code ec;
  fs::remove(path, ec);
}

// ---------------------------------------------------------------------------
// Socket server: admission shedding, reload under traffic, graceful drain.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, WireRoundTripMatchesBatch) {
  const ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  Result<ParsedHttpResponse> health =
      HttpFetch(server.port(), "GET", "/healthz", "");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);

  Result<ParsedHttpResponse> revise =
      HttpFetch(server.port(), "POST", "/v1/revise", BodyFor(5));
  ASSERT_TRUE(revise.ok()) << revise.status();
  EXPECT_EQ(revise->status, 200);
  EXPECT_EQ(revise->body, ExpectedFor(5));

  server.RequestDrain();
  server.AwaitDrain();
}

TEST_F(ServeTest, QueueFullShedsWithRetryAfter) {
  ServeConfig config = Config();
  config.workers = 1;
  config.queue_depth = 1;
  // Slow every revision (transient latency on a real clock) so concurrent
  // clients pile up behind the single worker and overflow the depth-1
  // queue.
  config.fault_plan =
      FaultPlan::Parse("rate=1.0,latency_us=100000,sites=serve.revise")
          .ValueOrDie();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> other{0};
  std::atomic<bool> saw_retry_after{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Result<ParsedHttpResponse> response = HttpFetch(
          server.port(), "POST", "/v1/revise", BodyFor(1), 30000);
      if (!response.ok()) {
        other.fetch_add(1);
        return;
      }
      if (response->status == 200) {
        ok.fetch_add(1);
      } else if (response->status == 429) {
        shed.fetch_add(1);
        if (response->headers.count("retry-after") != 0) {
          saw_retry_after.store(true);
        }
      } else {
        other.fetch_add(1);
      }
      (void)i;
    });
  }
  for (std::thread& t : clients) t.join();
  server.RequestDrain();
  server.AwaitDrain();

  // Overload degrades gracefully: every client got a typed answer, at
  // least one was shed with an explicit Retry-After, none vanished.
  EXPECT_EQ(ok.load() + shed.load() + other.load(), kClients);
  EXPECT_GE(shed.load(), 1) << "expected at least one 429 shed";
  EXPECT_TRUE(saw_retry_after.load());
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(server.stats().requests_shed.load(),
            static_cast<uint64_t>(shed.load()));
}

TEST_F(ServeTest, ReloadUnderTrafficFailsNoRequest) {
  const std::string path =
      (fs::temp_directory_path() / "serve_test_hotswap.json").string();
  const std::string good = json::ReadFile(*checkpoint_path_).ValueOrDie();
  ASSERT_TRUE(AtomicWriteFile(path, good).ok());
  ServeConfig config = Config();
  config.checkpoint = path;
  config.workers = 4;
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> traffic;
  for (int i = 0; i < 3; ++i) {
    traffic.emplace_back([&] {
      while (!stop.load()) {
        Result<ParsedHttpResponse> response =
            HttpFetch(server.port(), "POST", "/v1/revise", BodyFor(3));
        if (response.ok() && response->status == 200 &&
            response->body == ExpectedFor(3)) {
          ok.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  // Several hot reloads while traffic flows; every reload succeeds and no
  // in-flight request may fail or change bytes.
  for (int i = 0; i < 3; ++i) {
    Result<ParsedHttpResponse> reload =
        HttpFetch(server.port(), "POST", "/admin/reload", "");
    ASSERT_TRUE(reload.ok()) << reload.status();
    EXPECT_EQ(reload->status, 200);
  }
  stop.store(true);
  for (std::thread& t : traffic) t.join();
  server.RequestDrain();
  server.AwaitDrain();

  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(host.version(), 4u);  // initial load + 3 reloads

  std::error_code ec;
  fs::remove(path, ec);
}

TEST_F(ServeTest, SigtermDrainAnswersEveryAdmittedRequest) {
  // The graceful-drain harness of the issue: a burst of clients, SIGTERM
  // mid-burst, and three assertions — no admitted request goes without a
  // response, the listener closes before in-flight work finishes, and the
  // final run report validates.
  Observability::Default().Enable(/*deterministic=*/true);
  Observability::Default().trace().Reset();
  const int root = Observability::Default().trace().BeginSpan("serve");

  ServeConfig config = Config();
  config.workers = 2;
  config.queue_depth = 16;
  // Slow revisions keep requests in flight when the signal lands.
  config.fault_plan =
      FaultPlan::Parse("rate=1.0,latency_us=30000,sites=serve.revise")
          .ValueOrDie();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  ResetServeSignalsForTest();
  InstallServeSignalHandlers();
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());
  const int port = server.port();

  constexpr int kClients = 10;
  std::atomic<int> answered{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      Result<ParsedHttpResponse> response =
          HttpFetch(port, "POST", "/v1/revise", BodyFor(2), 30000);
      if (response.ok()) {
        answered.fetch_add(1);  // A complete, parseable response.
      } else {
        refused.fetch_add(1);  // Refused/reset before admission.
      }
    });
  }
  // Let some clients get admitted, then signal mid-burst.
  Clock::System()->SleepMicros(20000);
  ASSERT_EQ(std::raise(SIGTERM), 0);
  for (std::thread& t : clients) t.join();
  server.AwaitDrain();

  // Every client either got a full response or a clean connection-level
  // refusal, and — the drain contract — every connection the server
  // ADMITTED was answered with a complete response: answered equals
  // connections_accepted exactly, so nobody was dropped mid-response.
  EXPECT_EQ(answered.load() + refused.load(), kClients);
  EXPECT_EQ(static_cast<uint64_t>(answered.load()),
            server.stats().connections_accepted.load());
  EXPECT_GE(answered.load(), 1);
  // Listener closed first (and stays closed): a late connect is refused.
  Result<ParsedHttpResponse> late = HttpFetch(port, "GET", "/healthz", "");
  EXPECT_FALSE(late.ok());
  EXPECT_TRUE(server.draining());

  // The final run report must validate under the standard schema.
  Observability::Default().trace().EndSpan(root);
  RunReportOptions options;
  options.command = "serve";
  const json::Value report = BuildRunReport(options);
  const Status valid = ValidateRunReport(report);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  ResetServeSignalsForTest();
}

TEST_F(ServeTest, AcceptSiteFaultIsTypedAtTheConnection) {
  ServeConfig config = Config();
  config.fault_plan =
      FaultPlan::Parse("permanent=1.0,sites=serve.accept").ValueOrDie();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());
  Result<ParsedHttpResponse> response =
      HttpFetch(server.port(), "GET", "/healthz", "");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 500);
  EXPECT_NE(response->body.find("injected permanent fault"),
            std::string::npos);
  server.RequestDrain();
  server.AwaitDrain();
}

TEST_F(ServeTest, StartRejectsInvalidConfigAndMissingModel) {
  ServeConfig config = Config();
  config.workers = 0;
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  {
    RevisionServer server(config, &host);
    EXPECT_EQ(server.StartServing().code(), StatusCode::kInvalidArgument);
  }
  ServeConfig ok_config = Config();
  ModelHost unloaded(ok_config.checkpoint, ok_config.coach);
  RevisionServer server(ok_config, &unloaded);
  EXPECT_EQ(server.StartServing().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeConfigTest, ValidateRejectsOutOfRangeValues) {
  ServeConfig config;
  config.checkpoint = "coach.json";
  EXPECT_TRUE(config.Validate().ok());
  config.port = -1;
  EXPECT_FALSE(config.Validate().ok());
  config.port = 65536;
  EXPECT_FALSE(config.Validate().ok());
  config = ServeConfig{};
  config.workers = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ServeConfig{};
  config.queue_depth = -3;
  EXPECT_FALSE(config.Validate().ok());
  config = ServeConfig{};
  config.request_deadline_ms = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ServeConfig{};
  config.checkpoint.clear();
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace serve
}  // namespace coachlm
