// The observability layer's contracts: metric aggregation serializes to
// the same bytes at any thread count, histogram buckets are pinned by the
// catalog, run reports round-trip through the JSON parser under default
// limits and validate against the schema, and span timings on a
// SteppingClock are exact (not smoke-checked against the wall clock).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/execution.h"
#include "common/metrics.h"
#include "common/report.h"
#include "common/trace.h"
#include "json/json.h"
#include "json/parse_limits.h"

namespace coachlm {
namespace {

/// Every test arms a clean default registry and disarms on the way out, so
/// suites can run in any order without leaking enabled-state.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Observability::Default().Disable();
    Observability::Default().Enable(/*deterministic=*/true);
  }
  void TearDown() override { Observability::Default().Disable(); }
};

/// A deterministic workload hammering counters and a histogram from many
/// threads: per-item deltas depend only on the item index, so any schedule
/// must fold to the same totals.
void HammerRegistry(const ExecutionContext& exec, size_t items) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter* counter = registry.FindCounter("revise.items_changed");
  MetricHistogram* histogram = registry.FindHistogram("revise.response_chars");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(histogram, nullptr);
  exec.ParallelFor(items, [&](size_t i) {
    counter->Add(i % 3);
    histogram->Observe(static_cast<int64_t>((i * 97) % 9000));
  });
  SetGaugeMetric("train.alpha_x1000", 300);
}

TEST_F(ObservabilityTest, AggregationIsByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> dumps;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    MetricsRegistry::Default().Reset();
    MetricsRegistry::Default().set_enabled(true);
    const ExecutionContext exec(threads);
    HammerRegistry(exec, 10000);
    dumps.push_back(MetricsRegistry::Default().ToJson().Dump());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
  // Spot-check the fold itself, not just its stability: sum of i % 3 over
  // 10000 items is 9999.
  EXPECT_NE(dumps[0].find("\"revise.items_changed\":9999"), std::string::npos)
      << dumps[0];
}

TEST_F(ObservabilityTest, HistogramBucketsArePinnedByCatalog) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  const MetricHistogram* chars = registry.FindHistogram("revise.response_chars");
  ASSERT_NE(chars, nullptr);
  EXPECT_EQ(chars->bounds(),
            (std::vector<int64_t>{64, 128, 256, 512, 1024, 2048, 4096, 8192}));
  const MetricHistogram* ratings = registry.FindHistogram("rate.rating_x100");
  ASSERT_NE(ratings, nullptr);
  EXPECT_EQ(ratings->bounds(), (std::vector<int64_t>{50, 100, 150, 200, 250,
                                                     300, 350, 400, 450, 500}));
}

TEST_F(ObservabilityTest, HistogramCountsLandInCatalogBuckets) {
  MetricHistogram* histogram =
      MetricsRegistry::Default().FindHistogram("revise.response_chars");
  ASSERT_NE(histogram, nullptr);
  histogram->Observe(64);     // inclusive upper bound -> bucket 0
  histogram->Observe(65);     // -> bucket 1
  histogram->Observe(100000); // -> overflow bucket
  const std::vector<uint64_t> counts = histogram->counts();
  ASSERT_EQ(counts.size(), 9u);  // 8 bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[8], 1u);
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_EQ(histogram->sum(), 64 + 65 + 100000);
}

TEST_F(ObservabilityTest, DisabledRegistryReturnsNullAndDropsWrites) {
  Observability::Default().Disable();
  EXPECT_EQ(MetricsRegistry::Default().FindCounter("revise.items_changed"),
            nullptr);
  CountMetric("revise.items_changed", 7);  // must be a silent no-op
  MetricsRegistry::Default().set_enabled(true);
  const Counter* counter =
      MetricsRegistry::Default().FindCounter("revise.items_changed");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 0u);
}

TEST_F(ObservabilityTest, UnknownNameWarnsOncePerNameWhenArmed) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.set_enabled(true);
  // Probe names live in locals so the lint's registry-unknown-name rule
  // (which reads call-site literals) does not see them; the runtime
  // warning is exactly the net that catches such non-literal names.
  const std::string probe = "debug.warn_probe";
  const std::string silent_probe = "debug.warn_probe_silent";
  MetricsRegistry::set_warn_on_unknown_names(true);
  testing::internal::CaptureStderr();
  EXPECT_EQ(registry.FindCounter(probe), nullptr);
  EXPECT_EQ(registry.FindCounter(probe), nullptr);  // warn-once per name
  MetricsRegistry::set_warn_on_unknown_names(false);
  EXPECT_EQ(registry.FindCounter(silent_probe), nullptr);
  const std::string captured = testing::internal::GetCapturedStderr();
  const std::string quoted = "\"" + probe + "\"";
  const size_t first = captured.find(quoted);
  ASSERT_NE(first, std::string::npos) << captured;
  EXPECT_EQ(captured.find(quoted, first + 1), std::string::npos) << captured;
  EXPECT_EQ(captured.find(silent_probe), std::string::npos) << captured;
}

TEST_F(ObservabilityTest, UnknownOrWrongTypeLookupsDegradeToNoOps) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  // COACHLM_LINT_ALLOW(registry-unknown-name): deliberately unregistered name exercising the no-op degradation.
  EXPECT_EQ(registry.FindCounter("no.such_metric"), nullptr);
  // Catalog name, wrong type: a histogram is not a counter.
  EXPECT_EQ(registry.FindCounter("revise.response_chars"), nullptr);
  EXPECT_EQ(registry.FindHistogram("revise.items_changed"), nullptr);
}

TEST_F(ObservabilityTest, SteppingClockSpanTimingsAreExact) {
  // Enable(true) installed a SteppingClock(1000): every NowMicros() read
  // advances time by exactly 1ms, so span timings are a pure function of
  // the begin/end sequence. Reads: begin outer (epoch 0), begin inner
  // (1000), end inner (2000), end outer (3000); durations are end minus
  // start, so outer spans 3000us and inner 1000us.
  Trace& trace = Observability::Default().trace();
  const int outer = trace.BeginSpan("outer");
  const int inner = trace.BeginSpan("inner");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  const std::vector<Trace::Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].start_micros, 0);
  EXPECT_EQ(spans[0].duration_micros, 3000);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].start_micros, 1000);
  EXPECT_EQ(spans[1].duration_micros, 1000);
}

TEST_F(ObservabilityTest, EndSpanClosesOpenDescendants) {
  Trace& trace = Observability::Default().trace();
  const int outer = trace.BeginSpan("outer");
  (void)trace.BeginSpan("leaked");  // a stage that early-returned
  trace.EndSpan(outer);
  for (const Trace::Span& span : trace.spans()) {
    EXPECT_GE(span.duration_micros, 0) << span.name << " left open";
  }
}

TEST_F(ObservabilityTest, RunReportRoundTripsAndValidates) {
  Trace& trace = Observability::Default().trace();
  const int root = trace.BeginSpan("pipeline");
  const int child = trace.BeginSpan("revise");
  CountMetric("revise.items_in", 42);
  ObserveMetric("revise.response_chars", 300);
  trace.EndSpan(child);
  trace.EndSpan(root);

  RunReportOptions options;
  options.command = "pipeline";
  const json::Value report = BuildRunReport(options);
  ASSERT_TRUE(ValidateRunReport(report).ok())
      << ValidateRunReport(report).ToString();

  // The serialized document must survive our own parser under the default
  // (untouched) parse limits — reports are consumed by external tooling
  // through the same front door as every other JSON artifact.
  const std::string text = report.DumpPretty();
  auto parsed = json::Parse(text, json::ParseLimits());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), report.Dump());
  EXPECT_TRUE(ValidateRunReport(*parsed).ok());
  EXPECT_EQ(parsed->At("command").AsString(), "pipeline");
  EXPECT_TRUE(parsed->At("deterministic").AsBool());
  EXPECT_EQ(parsed->At("counters").At("revise.items_in").AsInt(), 42);
  // Deterministic mode pins the volatile sections to zero.
  EXPECT_EQ(parsed->At("process").At("peak_rss_bytes").AsInt(), 0);
  EXPECT_EQ(parsed->At("execution").At("threads").AsInt(), 0);
}

TEST_F(ObservabilityTest, ValidateRejectsMalformedReports) {
  RunReportOptions options;
  options.command = "pipeline";
  json::Value report = BuildRunReport(options);
  report.AsObject()["kind"] = json::Value("neither");
  EXPECT_FALSE(ValidateRunReport(report).ok());
  report.AsObject()["kind"] = json::Value("run");
  report.AsObject().erase("spans");
  EXPECT_FALSE(ValidateRunReport(report).ok());
  EXPECT_FALSE(ValidateRunReport(json::Value(3)).ok());
}

TEST_F(ObservabilityTest, CatalogDumpListsEveryMetricOnce) {
  const std::string dump = MetricsRegistry::CatalogDump();
  size_t lines = 0;
  for (const char c : dump) lines += c == '\n';
  EXPECT_EQ(lines, MetricCatalog().size());
  for (const MetricDef& def : MetricCatalog()) {
    EXPECT_NE(dump.find(def.name), std::string::npos) << def.name;
  }
}

TEST_F(ObservabilityTest, BenchReportFlushAppendsValidatableLines) {
  const std::string path =
      ::testing::TempDir() + "/observability_test_bench.jsonl";
  std::remove(path.c_str());
  BenchReport::SetArtifact("Guard");
  BenchReport::Record("overhead", 0.25, "%");
  ASSERT_TRUE(BenchReport::FlushTo(path).ok());
  // The buffer clears on flush: a second flush must not duplicate the line.
  ASSERT_TRUE(BenchReport::FlushTo(path).ok());
  BenchReport::Record("overhead", 0.5, "%");
  ASSERT_TRUE(BenchReport::FlushTo(path).ok());

  FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  std::remove(path.c_str());

  size_t lines = 0;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++lines;
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(ValidateRunReport(*parsed).ok());
    EXPECT_EQ(parsed->At("kind").AsString(), "bench");
    EXPECT_EQ(parsed->At("artifact").AsString(), "Guard");
  }
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace coachlm
