#include "quality/accuracy_rater.h"

#include <gtest/gtest.h>

#include "quality/criteria.h"
#include "synth/generator.h"

namespace coachlm {
namespace quality {
namespace {

TEST(AccuracyRaterTest, RangeIsZeroToFive) {
  synth::CorpusConfig config;
  config.size = 500;
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  AccuracyRater rater;
  for (const InstructionPair& pair : corpus.dataset) {
    const double r = rater.Rate(pair);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 5.0);
  }
}

TEST(AccuracyRaterTest, MonotoneInResponseScore) {
  synth::CorpusConfig config;
  config.size = 300;
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  AccuracyRater rater;
  ResponseScorer scorer;
  for (const InstructionPair& pair : corpus.dataset) {
    EXPECT_DOUBLE_EQ(rater.Rate(pair), scorer.Score(pair).score / 20.0);
  }
}

TEST(AccuracyRaterTest, EmptyDatasetRates) {
  const auto rating = AccuracyRater().RateDataset(InstructionDataset());
  EXPECT_EQ(rating.mean, 0.0);
  EXPECT_EQ(rating.fraction_above_45, 0.0);
  EXPECT_TRUE(rating.ratings.empty());
}

TEST(AccuracyRaterTest, DatasetAggregatesMatchIndividuals) {
  synth::CorpusConfig config;
  config.size = 200;
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  AccuracyRater rater;
  const auto rating = rater.RateDataset(corpus.dataset);
  ASSERT_EQ(rating.ratings.size(), corpus.dataset.size());
  double sum = 0;
  size_t above = 0;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    EXPECT_DOUBLE_EQ(rating.ratings[i], rater.Rate(corpus.dataset[i]));
    sum += rating.ratings[i];
    if (rating.ratings[i] > 4.5) ++above;
  }
  EXPECT_NEAR(rating.mean, sum / corpus.dataset.size(), 1e-12);
  EXPECT_DOUBLE_EQ(rating.fraction_above_45,
                   static_cast<double>(above) / corpus.dataset.size());
}

}  // namespace
}  // namespace quality
}  // namespace coachlm
