#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace coachlm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    COACHLM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, TransientCodes) {
  EXPECT_EQ(Status::Unavailable("backend down").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable),
            std::string("Unavailable"));
  EXPECT_EQ(Status::DeadlineExceeded("too slow").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            std::string("DeadlineExceeded"));
}

TEST(StatusTest, IsTransientClassifiesRetryableCodes) {
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsTransient());
  EXPECT_TRUE(Status::IoError("x").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::ParseError("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto source = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::OutOfRange("empty");
  };
  auto consumer = [&](bool ok) -> Result<int> {
    COACHLM_ASSIGN_OR_RETURN(int v, source(ok));
    return v * 2;
  };
  EXPECT_EQ(*consumer(true), 14);
  EXPECT_EQ(consumer(false).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace coachlm
