#include "json/json.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.5")->AsNumber(), 3.5);
  EXPECT_EQ(Parse("-17")->AsInt(), -17);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  auto r = Parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(r.ok());
  const Value& v = *r;
  ASSERT_TRUE(v.is_object());
  const Array& a = v.At("a").AsArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].AsInt(), 1);
  EXPECT_EQ(a[2].At("b").AsString(), "c");
  EXPECT_TRUE(v.At("d").is_null());
}

TEST(JsonParseTest, StringEscapes) {
  auto r = Parse(R"("line\nbreak\ttab\\slash\"quoteA")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "line\nbreak\ttab\\slash\"quoteA");
}

TEST(JsonParseTest, UnicodeEscapeMultibyte) {
  auto r = Parse(R"("é中")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"bad\\escape\"").ok());
  EXPECT_FALSE(Parse("\"ctrl\x01char\"").ok());
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonDumpTest, RoundTripsStructure) {
  Object obj;
  obj["name"] = Value("CoachLM");
  obj["alpha"] = Value(0.3);
  obj["count"] = Value(static_cast<int64_t>(2301));
  obj["flag"] = Value(true);
  Array arr;
  arr.push_back(Value("x\ny"));
  arr.push_back(Value());
  obj["items"] = Value(std::move(arr));
  const Value original{std::move(obj)};

  auto reparsed = Parse(original.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), original.Dump());
  auto repretty = Parse(original.DumpPretty());
  ASSERT_TRUE(repretty.ok());
  EXPECT_EQ(repretty->Dump(), original.Dump());
}

TEST(JsonDumpTest, IntegersStayIntegers) {
  EXPECT_EQ(Value(static_cast<int64_t>(52000)).Dump(), "52000");
  EXPECT_EQ(Value(2.5).Dump(), "2.5");
}

TEST(JsonValueTest, TypedGettersValidate) {
  auto v = Parse(R"({"s": "str", "n": 2, "b": false})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->GetString("s"), "str");
  EXPECT_EQ(*v->GetNumber("n"), 2.0);
  EXPECT_EQ(*v->GetBool("b"), false);
  EXPECT_FALSE(v->GetString("n").ok());
  EXPECT_FALSE(v->GetNumber("missing").ok());
}

TEST(JsonValueTest, AtOnNonObjectIsNull) {
  EXPECT_TRUE(Value(3.0).At("x").is_null());
  EXPECT_TRUE(Value("s").At("x").is_null());
}

TEST(JsonValueTest, EscapeStringControlChars) {
  EXPECT_EQ(EscapeString("a\x02z"), "\"a\\u0002z\"");
  EXPECT_EQ(EscapeString("tab\t"), "\"tab\\t\"");
}

}  // namespace
}  // namespace json
}  // namespace coachlm
