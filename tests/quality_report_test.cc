#include "quality/quality_report.h"

#include <gtest/gtest.h>

#include "coach/pipeline.h"
#include "expert/pipeline.h"
#include "synth/generator.h"

namespace coachlm {
namespace quality {
namespace {

TEST(QualityReportTest, EmptyDataset) {
  const QualityReport report = AnalyzeDataset(InstructionDataset());
  EXPECT_EQ(report.dataset_size, 0u);
  EXPECT_TRUE(report.dimensions.empty());
}

TEST(QualityReportTest, CoversAllNineDimensions) {
  synth::CorpusConfig config;
  config.size = 300;
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  const QualityReport report = AnalyzeDataset(corpus.dataset);
  EXPECT_EQ(report.dataset_size, 300u);
  EXPECT_EQ(report.dimensions.size(), 10u);  // 3 instruction + 7 response
  for (const auto& [dimension, stats] : report.dimensions) {
    EXPECT_GE(stats.mean_satisfaction, 0.0);
    EXPECT_LE(stats.mean_satisfaction, 1.0);
    EXPECT_GE(stats.flaw_rate, 0.0);
    EXPECT_LE(stats.flaw_rate, 1.0);
  }
  EXPECT_GT(report.mean_response_score, 40.0);
}

TEST(QualityReportTest, FlawRatesReflectInjectedDefects) {
  synth::CorpusConfig clean_config;
  clean_config.size = 400;
  clean_config.deficiency_rate = 0.0;
  clean_config.exclusion_rate = 0.0;
  synth::CorpusConfig dirty_config = clean_config;
  dirty_config.deficiency_rate = 0.8;
  const auto clean = synth::SynthCorpusGenerator(clean_config).Generate();
  const auto dirty = synth::SynthCorpusGenerator(dirty_config).Generate();
  const QualityReport clean_report = AnalyzeDataset(clean.dataset);
  const QualityReport dirty_report = AnalyzeDataset(dirty.dataset);
  EXPECT_GT(
      dirty_report.dimensions.at(Dimension::kResponseReadability).flaw_rate,
      clean_report.dimensions.at(Dimension::kResponseReadability).flaw_rate);
  EXPECT_GT(dirty_report.dimensions.at(Dimension::kComprehensiveness)
                .flaw_rate,
            clean_report.dimensions.at(Dimension::kComprehensiveness)
                .flaw_rate);
  EXPECT_LT(dirty_report.mean_response_score,
            clean_report.mean_response_score);
}

TEST(QualityReportTest, RenderingsContainDimensions) {
  synth::CorpusConfig config;
  config.size = 100;
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  const QualityReport report = AnalyzeDataset(corpus.dataset);
  const std::string ascii = report.ToAscii();
  EXPECT_NE(ascii.find("comprehensiveness"), std::string::npos);
  EXPECT_NE(ascii.find("red line"), std::string::npos);
  const std::string compare = QualityReport::Compare(report, report);
  EXPECT_NE(compare.find("Flaw rate before"), std::string::npos);
}

TEST(QualityReportTest, CoachRevisionReducesBasicFlaws) {
  synth::CorpusConfig config;
  config.size = 1200;
  config.seed = 42;
  synth::SynthCorpusGenerator generator(config);
  const auto corpus = generator.Generate();
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = 400;
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);
  const auto result =
      coach::RunCoachPipeline(corpus.dataset, study.revisions, {});
  const QualityReport before = AnalyzeDataset(corpus.dataset);
  const QualityReport after = AnalyzeDataset(result.revised_dataset);
  EXPECT_LT(after.dimensions.at(Dimension::kComprehensiveness).flaw_rate,
            before.dimensions.at(Dimension::kComprehensiveness).flaw_rate);
  EXPECT_LT(after.dimensions.at(Dimension::kInstructionReadability).flaw_rate,
            before.dimensions.at(Dimension::kInstructionReadability).flaw_rate);
  // Safety is a red line the coach does not (and must not) launder away.
  EXPECT_NEAR(after.dimensions.at(Dimension::kSafety).flaw_rate,
              before.dimensions.at(Dimension::kSafety).flaw_rate, 0.01);
}

}  // namespace
}  // namespace quality
}  // namespace coachlm
