#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"

namespace coachlm {
namespace {

TEST(RetryPolicyTest, FirstAttemptHasNoBackoff) {
  RetryPolicy policy;
  EXPECT_EQ(policy.BackoffMicros(1, 7), 0);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBand) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 1000000;
  // Attempt n+1's nominal backoff is initial * 2^(n-1); jitter keeps the
  // actual value in [0.5, 1.0) of nominal.
  int64_t nominal = 1000;
  for (int next_attempt = 2; next_attempt <= 6; ++next_attempt) {
    const int64_t backoff = policy.BackoffMicros(next_attempt, 99);
    EXPECT_GE(backoff, nominal / 2);
    EXPECT_LT(backoff, nominal);
    nominal *= 2;
  }
}

TEST(RetryPolicyTest, BackoffIsCapped) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 3000;
  EXPECT_LE(policy.BackoffMicros(12, 7), 3000);
}

TEST(RetryPolicyTest, JitterIsDeterministicPerKey) {
  RetryPolicy policy;
  EXPECT_EQ(policy.BackoffMicros(3, 42), policy.BackoffMicros(3, 42));
  // Different keys almost surely land on different jitter draws; accept a
  // coincidence on one attempt but not on every attempt.
  bool any_differ = false;
  for (int next_attempt = 2; next_attempt <= 8; ++next_attempt) {
    if (policy.BackoffMicros(next_attempt, 1) !=
        policy.BackoffMicros(next_attempt, 2)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  FakeClock clock;
  const RetryOutcome outcome =
      RetryWithBackoff(RetryPolicy(), &clock, 7, [](int) {
        return Status::OK();
      });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  FakeClock clock;
  int calls = 0;
  const RetryOutcome outcome =
      RetryWithBackoff(RetryPolicy(), &clock, 7, [&](int attempt) {
        ++calls;
        EXPECT_EQ(attempt, calls);
        if (attempt < 3) return Status::Unavailable("flaky");
        return Status::OK();
      });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_GT(clock.NowMicros(), 0);  // slept between attempts
}

TEST(RetryTest, NonTransientFailureReturnsImmediately) {
  FakeClock clock;
  int calls = 0;
  const RetryOutcome outcome =
      RetryWithBackoff(RetryPolicy(), &clock, 7, [&](int) {
        ++calls;
        return Status::InvalidArgument("never retry this");
      });
  EXPECT_EQ(outcome.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastTransientStatus) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  const RetryOutcome outcome =
      RetryWithBackoff(policy, &clock, 7, [&](int attempt) {
        ++calls;
        return Status::IoError("disk flake " + std::to_string(attempt));
      });
  EXPECT_EQ(outcome.status.code(), StatusCode::kIoError);
  EXPECT_EQ(outcome.status.message(), "disk flake 3");
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, DeadlineStopsRetriesEarly) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_us = 1000;
  policy.deadline_us = 5000;
  int calls = 0;
  const RetryOutcome outcome =
      RetryWithBackoff(policy, &clock, 7, [&](int) {
        ++calls;
        return Status::Unavailable("still down");
      });
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(calls, 100);
  EXPECT_LT(clock.NowMicros(), 5000);
}

TEST(RetryTest, ScheduleIsDeterministic) {
  // Same policy + jitter key + failure pattern => identical virtual
  // timeline, run after run.
  auto run = [] {
    FakeClock clock;
    std::vector<int64_t> sleeps;
    RetryPolicy policy;
    policy.max_attempts = 5;
    RetryWithBackoff(policy, &clock, 1234, [&](int) {
      sleeps.push_back(clock.NowMicros());
      return Status::Unavailable("down");
    });
    return sleeps;
  };
  EXPECT_EQ(run(), run());
}

TEST(RetryTest, MaxAttemptsFloorIsOne) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 0;  // degenerate config still runs the op once
  int calls = 0;
  const RetryOutcome outcome =
      RetryWithBackoff(policy, &clock, 7, [&](int) {
        ++calls;
        return Status::Unavailable("down");
      });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.attempts, 1);
}

}  // namespace
}  // namespace coachlm
