#include "data/category.h"

#include <gtest/gtest.h>

#include <set>

namespace coachlm {
namespace {

TEST(CategoryTest, ExactlyFortyTwoCategories) {
  EXPECT_EQ(kNumCategories, 42u);
  EXPECT_EQ(AllCategories().size(), 42u);
}

TEST(CategoryTest, NamesAreUniqueAndRoundTrip) {
  std::set<std::string> names;
  for (Category c : AllCategories()) {
    const std::string& name = CategoryName(c);
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
    auto parsed = CategoryFromName(name);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, c);
  }
}

TEST(CategoryTest, UnknownNameFails) {
  EXPECT_FALSE(CategoryFromName("no_such_category").ok());
  EXPECT_FALSE(CategoryFromName("").ok());
}

TEST(CategoryTest, ThreeTaskClassesAllPopulated) {
  size_t counts[3] = {0, 0, 0};
  for (Category c : AllCategories()) {
    ++counts[static_cast<size_t>(ClassOf(c))];
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 42u);
  EXPECT_GT(counts[0], 10u);  // language tasks
  EXPECT_GT(counts[1], 10u);  // Q&A
  EXPECT_GT(counts[2], 10u);  // creative
}

TEST(CategoryTest, SpecificClassAssignments) {
  EXPECT_EQ(ClassOf(Category::kGrammarCorrection), TaskClass::kLanguageTask);
  EXPECT_EQ(ClassOf(Category::kCoding), TaskClass::kQa);
  EXPECT_EQ(ClassOf(Category::kStoryWriting), TaskClass::kCreative);
  EXPECT_EQ(ClassOf(Category::kSpeechWriting), TaskClass::kCreative);
}

TEST(CategoryTest, TaskClassNames) {
  EXPECT_EQ(TaskClassName(TaskClass::kLanguageTask), "language_task");
  EXPECT_EQ(TaskClassName(TaskClass::kQa), "qa");
  EXPECT_EQ(TaskClassName(TaskClass::kCreative), "creative");
}

}  // namespace
}  // namespace coachlm
