#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace coachlm {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextDoubleInHalfOpenUnit) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian(5.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalDegenerateInputs) {
  Rng rng(21);
  EXPECT_EQ(rng.NextCategorical({}), 0u);
  EXPECT_EQ(rng.NextCategorical({0.0, 0.0}), 0u);
  EXPECT_EQ(rng.NextCategorical({-1.0, 0.0, 5.0}), 2u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng fork = a.Fork();
  // The fork must not replay the parent's stream.
  EXPECT_NE(a.Next(), fork.Next());
}

}  // namespace
}  // namespace coachlm
