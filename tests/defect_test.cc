#include "synth/defect.h"

#include <gtest/gtest.h>

#include <set>

#include "quality/analyzers.h"
#include "quality/criteria.h"
#include "synth/topic_bank.h"
#include "text/string_util.h"

namespace coachlm {
namespace synth {
namespace {

InstructionPair CleanPair(Category category, uint64_t seed = 1) {
  ContentEngine engine;
  Rng rng(seed);
  ResponseRichness richness;
  richness.explanations = 3;
  richness.closing = true;
  return engine.BuildCleanPair(1, category, Topics()[seed % Topics().size()],
                               richness, &rng);
}

TEST(DefectTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (size_t i = 0; i < kNumDefectTypes; ++i) {
    EXPECT_TRUE(names.insert(DefectName(static_cast<DefectType>(i))).second);
  }
}

TEST(DefectTest, ExclusionClassification) {
  EXPECT_TRUE(IsExclusionDefect(DefectType::kUnsafe));
  EXPECT_TRUE(IsExclusionDefect(DefectType::kInvalidInput));
  EXPECT_FALSE(IsExclusionDefect(DefectType::kEmptyResponse));
  EXPECT_FALSE(IsExclusionDefect(DefectType::kMissingContext));
}

// Each quality defect must measurably lower the response or instruction
// score of a clean pair — otherwise the expert could never detect it.
class DefectDegradesQualityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DefectDegradesQualityTest, InjectionLowersScoreOrSkips) {
  const DefectType type = static_cast<DefectType>(GetParam());
  ContentEngine engine;
  DefectInjector injector(&engine);
  Rng rng(42 + GetParam());
  // Use a category the defect applies to.
  const Category category = type == DefectType::kFactualError
                                ? Category::kGeneralQa
                                : Category::kHowToGuide;
  InstructionPair pair = CleanPair(category, GetParam());
  const double before = quality::ScorePair(pair).Combined();
  InstructionPair damaged = pair;
  const bool applied = injector.Apply(type, &damaged, &rng);
  if (!applied) {
    EXPECT_EQ(damaged.instruction, pair.instruction);
    EXPECT_EQ(damaged.output, pair.output);
    return;
  }
  const double after = quality::ScorePair(damaged).Combined();
  EXPECT_LT(after, before - 1.0)
      << DefectName(type) << "\nbefore: " << pair.output
      << "\nafter: " << damaged.output;
}

INSTANTIATE_TEST_SUITE_P(AllDefects, DefectDegradesQualityTest,
                         ::testing::Range<size_t>(0, kNumDefectTypes));

TEST(DefectTest, EmptyResponseNotReapplicable) {
  ContentEngine engine;
  DefectInjector injector(&engine);
  Rng rng(1);
  InstructionPair pair = CleanPair(Category::kGeneralQa);
  EXPECT_TRUE(injector.Apply(DefectType::kEmptyResponse, &pair, &rng));
  EXPECT_TRUE(pair.output.empty());
  EXPECT_FALSE(injector.Apply(DefectType::kEmptyResponse, &pair, &rng));
}

TEST(DefectTest, FactualErrorSwapsToWrongFact) {
  ContentEngine engine;
  DefectInjector injector(&engine);
  Rng rng(2);
  InstructionPair pair = CleanPair(Category::kGeneralQa, 3);
  const Topic* topic = FindTopicIn(pair.output);
  ASSERT_NE(topic, nullptr);
  ASSERT_TRUE(strings::Contains(pair.output, topic->fact));
  ASSERT_TRUE(injector.Apply(DefectType::kFactualError, &pair, &rng));
  EXPECT_TRUE(strings::Contains(pair.output, topic->wrong_fact));
  EXPECT_FALSE(strings::Contains(pair.output, topic->fact));
}

TEST(DefectTest, AmbiguousInstructionRemovesTopicName) {
  ContentEngine engine;
  DefectInjector injector(&engine);
  Rng rng(3);
  InstructionPair pair = CleanPair(Category::kGeneralQa, 5);
  const Topic* topic = FindTopicIn(pair.instruction);
  ASSERT_NE(topic, nullptr);
  ASSERT_TRUE(injector.Apply(DefectType::kAmbiguousInstruction, &pair, &rng));
  EXPECT_FALSE(strings::Contains(pair.instruction, topic->name));
}

TEST(DefectTest, TruncationShortensResponse) {
  ContentEngine engine;
  DefectInjector injector(&engine);
  Rng rng(4);
  InstructionPair pair = CleanPair(Category::kEssayWriting, 7);
  const size_t before = strings::CountWords(pair.output);
  ASSERT_TRUE(injector.Apply(DefectType::kTruncatedResponse, &pair, &rng));
  EXPECT_LT(strings::CountWords(pair.output), before / 2 + 2);
}

TEST(DefectTest, SpellingNoiseIsRepairableByLexicon) {
  ContentEngine engine;
  DefectInjector injector(&engine);
  Rng rng(5);
  // A response rich in common words.
  InstructionPair pair;
  pair.category = Category::kGeneralQa;
  pair.instruction = "Explain the environment.";
  pair.output =
      "The government and the environment are definitely different because "
      "of their development.";
  ASSERT_TRUE(injector.Apply(DefectType::kSpellingNoise, &pair, &rng));
  EXPECT_LT(quality::analyzers::ResponseReadability(pair), 0.999);
}

}  // namespace
}  // namespace synth
}  // namespace coachlm
