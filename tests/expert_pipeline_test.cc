#include "expert/pipeline.h"

#include <gtest/gtest.h>

#include "synth/generator.h"

namespace coachlm {
namespace expert {
namespace {

class ExpertPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 4000;
    config.seed = 42;
    generator_ = new synth::SynthCorpusGenerator(config);
    corpus_ = new synth::SynthCorpus(generator_->Generate());
    RevisionStudyConfig study_config;
    study_config.sample_size = 1000;
    result_ = new RevisionStudyResult(RunRevisionStudy(
        corpus_->dataset, generator_->engine(), study_config));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete corpus_;
    delete generator_;
  }

  static synth::SynthCorpusGenerator* generator_;
  static synth::SynthCorpus* corpus_;
  static RevisionStudyResult* result_;
};

synth::SynthCorpusGenerator* ExpertPipelineTest::generator_ = nullptr;
synth::SynthCorpus* ExpertPipelineTest::corpus_ = nullptr;
RevisionStudyResult* ExpertPipelineTest::result_ = nullptr;

TEST_F(ExpertPipelineTest, ExclusionRateNearTableThree) {
  // ~18% of the sample falls into Table III categories.
  const double rate =
      static_cast<double>(result_->filter_stats.TotalExcluded()) / 1000.0;
  EXPECT_NEAR(rate, 0.18, 0.05);
}

TEST_F(ExpertPipelineTest, ExclusionMixSkewsLikeTableThree) {
  // Invalid Input dominates; Multi-modal is the rarest.
  const auto& stats = result_->filter_stats;
  EXPECT_GT(stats.Ratio(ExclusionReason::kInvalidInput), 0.3);
  EXPECT_GT(stats.Ratio(ExclusionReason::kInvalidInput),
            stats.Ratio(ExclusionReason::kMultiModal));
  EXPECT_GT(stats.Ratio(ExclusionReason::kBeyondExpertise),
            stats.Ratio(ExclusionReason::kMassiveWorkload));
}

TEST_F(ExpertPipelineTest, DeficiencyRateNearPaper) {
  // 46.8% of examined pairs receive revisions (Section II-E2).
  const double rate = static_cast<double>(result_->revised_pairs) /
                      static_cast<double>(result_->examined_after_filter);
  EXPECT_NEAR(rate, 0.468, 0.12);
}

TEST_F(ExpertPipelineTest, InstructionShareNearPaper) {
  // 1079 of 2301 revised pairs had instruction revisions (~47%).
  const double share =
      static_cast<double>(result_->instruction_revised_pairs) /
      static_cast<double>(result_->revised_pairs);
  EXPECT_NEAR(share, 0.47, 0.12);
}

TEST_F(ExpertPipelineTest, ExpansionIsDominantResponseRevision) {
  // Table IV: Diversify/Expand is the largest response bucket.
  const auto& counts = result_->response_revision_counts;
  auto at = [&](ResponseRevisionType t) {
    auto it = counts.find(t);
    return it == counts.end() ? size_t{0} : it->second;
  };
  const size_t expand = at(ResponseRevisionType::kDiversifyExpand);
  EXPECT_GT(expand, at(ResponseRevisionType::kCorrectFacts));
  EXPECT_GT(expand, at(ResponseRevisionType::kOther));
}

TEST_F(ExpertPipelineTest, ReadabilityDominatesInstructionRevisions) {
  // Table IV: ~68% of instruction revisions adjust readability.
  const auto& counts = result_->instruction_revision_counts;
  auto at = [&](InstructionRevisionType t) {
    auto it = counts.find(t);
    return it == counts.end() ? size_t{0} : it->second;
  };
  EXPECT_GT(at(InstructionRevisionType::kAdjustReadability),
            at(InstructionRevisionType::kRewriteFeasibility));
  EXPECT_GT(at(InstructionRevisionType::kRewriteFeasibility),
            at(InstructionRevisionType::kDiversifyContext));
}

TEST_F(ExpertPipelineTest, PersonDaysScaleLikePaper) {
  // 6k pairs cost ~129 person-days; 1k should cost roughly a sixth.
  EXPECT_NEAR(result_->person_days, 129.0 / 6.0, 9.0);
}

TEST_F(ExpertPipelineTest, RevisionsImproveQuality) {
  for (const RevisionRecord& record : result_->revisions) {
    EXPECT_GT(record.char_edit_distance, 0u);
  }
}

TEST_F(ExpertPipelineTest, MergedDatasetSubstitutesInPlace) {
  ASSERT_EQ(result_->merged_dataset.size(), corpus_->dataset.size());
  size_t changed = 0;
  for (size_t i = 0; i < corpus_->dataset.size(); ++i) {
    EXPECT_EQ(result_->merged_dataset[i].id, corpus_->dataset[i].id);
    if (!(result_->merged_dataset[i] == corpus_->dataset[i])) ++changed;
  }
  EXPECT_EQ(changed, result_->revisions.size());
}

TEST(EffortModelTest, CostsRiseWithDifficulty) {
  EffortModel effort;
  EXPECT_LT(effort.ReviseCost(TaskClass::kLanguageTask),
            effort.ReviseCost(TaskClass::kQa));
  EXPECT_LT(effort.ReviseCost(TaskClass::kQa),
            effort.ReviseCost(TaskClass::kCreative));
}

}  // namespace
}  // namespace expert
}  // namespace coachlm
