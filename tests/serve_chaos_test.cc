// Hostile-network envelope coverage for the serve layer: the deterministic
// socket chaos wrapper (slow-drip reads, torn writes, EINTR storms,
// injected stalls, mid-exchange RST), the server's read/write timeouts
// against slowloris and torn-body peers, and the resilient client's
// retry-with-backoff through all of it. Every scenario must end in a typed
// response or a clean close — never a crashed or hung worker.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "coach/coach_lm.h"
#include "coach/trainer.h"
#include "common/clock.h"
#include "common/fault.h"
#include "common/retry.h"
#include "expert/pipeline.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/http.h"
#include "serve/model_host.h"
#include "serve/serve_config.h"
#include "serve/server.h"
#include "synth/generator.h"

namespace coachlm {
namespace serve {
namespace {

namespace fs = std::filesystem;

FaultPlan Plan(const std::string& spec) {
  return FaultPlan::Parse(spec).ValueOrDie();
}

/// A connected AF_UNIX stream pair for exercising ChaosSocket without a
/// server. Closes both ends on destruction unless released.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = sv[0];
    b = sv[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

/// Reads from \p fd until EOF or \p cap bytes.
std::string DrainFd(int fd, size_t cap = 1 << 20) {
  std::string out;
  char buffer[4096];
  while (out.size() < cap) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    out.append(buffer, static_cast<size_t>(got));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ChaosSocket: deterministic, passthrough when unarmed, survivable when
// armed.
// ---------------------------------------------------------------------------

TEST(ChaosSocketTest, EqualPlanAndConnectionDisturbIdentically) {
  const FaultPlan plan = Plan(
      "rate=0.6,seed=7,continuation=0.5,"
      "sites=chaos.read+chaos.write+chaos.eintr+chaos.stall+chaos.rst");
  FakeClock clock;
  for (uint64_t id = 0; id < 32; ++id) {
    SocketPair first;
    SocketPair second;
    ChaosSocket one(first.a, plan, id, &clock);
    ChaosSocket two(second.a, plan, id, &clock);
    EXPECT_EQ(one.rst_armed(), two.rst_armed()) << "connection " << id;
    // Identical operation sequences observe identical disturbances.
    const std::string message(256, 'x');
    ASSERT_TRUE(one.SendAll(message).ok());
    ASSERT_TRUE(two.SendAll(message).ok());
    EXPECT_EQ(one.stats().writes_torn, two.stats().writes_torn);
    EXPECT_EQ(one.stats().eintr_injected, two.stats().eintr_injected);
    EXPECT_EQ(one.stats().stalls_injected, two.stats().stalls_injected);
  }
}

TEST(ChaosSocketTest, PlanWithoutChaosSitesIsPassthrough) {
  // A plan aimed at stage-level sites only must leave the socket alone.
  const FaultPlan plan = Plan("rate=1.0,seed=3,sites=serve.revise");
  SocketPair pair;
  ChaosSocket socket(pair.a, plan, /*connection_id=*/1);
  const std::string message(512, 'y');
  const ssize_t wrote = socket.Send(message.data(), message.size());
  EXPECT_EQ(wrote, static_cast<ssize_t>(message.size()));
  EXPECT_EQ(socket.stats().writes_torn, 0u);
  EXPECT_EQ(socket.stats().eintr_injected, 0u);
  EXPECT_FALSE(socket.rst_armed());
}

TEST(ChaosSocketTest, SendAllSurvivesEintrStormAndTornWrites) {
  const FaultPlan plan =
      Plan("rate=1.0,seed=11,continuation=0.9,sites=chaos.write+chaos.eintr");
  SocketPair pair;
  ChaosSocket socket(pair.a, plan, /*connection_id=*/5);
  std::string message;
  for (int i = 0; i < 500; ++i) message += "payload-" + std::to_string(i);
  const Status status = socket.SendAll(message);
  ASSERT_TRUE(status.ok()) << status;
  // rate=1.0 arms both sites on every connection; the robust loop must
  // have absorbed at least one of each disturbance.
  EXPECT_GE(socket.stats().writes_torn, 1u);
  EXPECT_GE(socket.stats().eintr_injected, 1u);
  ::shutdown(pair.a, SHUT_WR);
  EXPECT_EQ(DrainFd(pair.b), message);  // Every byte still arrived, in order.
}

TEST(ChaosSocketTest, DrippedReadsReassembleTheStream) {
  const FaultPlan plan =
      Plan("rate=1.0,seed=17,continuation=0.9,sites=chaos.read");
  SocketPair pair;
  const std::string message = "POST /v1/revise HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(pair.b, message.data(), message.size(), 0),
            static_cast<ssize_t>(message.size()));
  ::shutdown(pair.b, SHUT_WR);
  ChaosSocket socket(pair.a, plan, /*connection_id=*/2);
  std::string read_back;
  char buffer[4096];
  while (true) {
    const ssize_t got = socket.Recv(buffer, sizeof(buffer));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    read_back.append(buffer, static_cast<size_t>(got));
  }
  EXPECT_EQ(read_back, message);
  EXPECT_GE(socket.stats().reads_disturbed, 1u);
  EXPECT_LE(socket.stats().reads_disturbed,
            static_cast<uint64_t>(kMaxChaosOpsPerSite));
}

TEST(ChaosSocketTest, StallsSleepOnTheInjectedClock) {
  const FaultPlan plan =
      Plan("rate=1.0,seed=23,latency_us=5000,sites=chaos.stall");
  FakeClock clock;
  SocketPair pair;
  ASSERT_EQ(::send(pair.b, "x", 1, 0), 1);
  ChaosSocket socket(pair.a, plan, /*connection_id=*/3, &clock);
  char c = 0;
  ASSERT_EQ(socket.Recv(&c, 1), 1);
  EXPECT_GE(socket.stats().stalls_injected, 1u);
  EXPECT_GE(clock.elapsed_micros(), 5000);  // Stall served virtually.
}

// ---------------------------------------------------------------------------
// Server under hostile peers: typed responses or clean closes, never a
// crashed or wedged worker.
// ---------------------------------------------------------------------------

/// Shared fixture: a small trained coach checkpoint, built once.
class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 300;
    config.seed = 42;
    synth::SynthCorpusGenerator generator(config);
    corpus_ = new synth::SynthCorpus(generator.Generate());
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 100;
    const auto study = expert::RunRevisionStudy(
        corpus_->dataset, generator.engine(), study_config);
    coach::CoachConfig coach_config;
    coach_config.alpha = 0.3;
    model_ = new coach::CoachLm(
        coach::CoachTrainer(coach_config).Train(study.revisions));
    checkpoint_path_ = new std::string(
        (fs::temp_directory_path() / "serve_chaos_test_coach.json").string());
    ASSERT_TRUE(model_->SaveCheckpoint(*checkpoint_path_).ok());
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove(*checkpoint_path_, ec);
    delete checkpoint_path_;
    delete model_;
    delete corpus_;
  }

  static ServeConfig Config() {
    ServeConfig config;
    config.port = 0;  // Ephemeral: tests never race for a fixed port.
    config.checkpoint = *checkpoint_path_;
    config.coach = model_->config();
    return config;
  }

  static std::string BodyFor(size_t n) {
    std::string body;
    for (size_t i = 0; i < n && i < corpus_->dataset.size(); ++i) {
      body += corpus_->dataset[i].ToJson().Dump();
      body += '\n';
    }
    return body;
  }

  static std::string ExpectedFor(size_t n) {
    std::string expected;
    for (size_t i = 0; i < n && i < corpus_->dataset.size(); ++i) {
      const InstructionPair& pair = corpus_->dataset[i];
      Rng rng = DeriveRng(model_->config().seed, pair.id);
      expected += model_->Revise(pair, &rng).ToJson().Dump();
      expected += '\n';
    }
    return expected;
  }

  /// A raw TCP connection to the server, with a client-side recv timeout
  /// so a hung test fails typed instead of blocking the suite.
  static int RawConnect(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    timeval tv = {};
    tv.tv_sec = 5;
    (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  static synth::SynthCorpus* corpus_;
  static coach::CoachLm* model_;
  static std::string* checkpoint_path_;
};

synth::SynthCorpus* ServeChaosTest::corpus_ = nullptr;
coach::CoachLm* ServeChaosTest::model_ = nullptr;
std::string* ServeChaosTest::checkpoint_path_ = nullptr;

TEST_F(ServeChaosTest, SlowlorisHeaderDripHitsReadTimeout) {
  ServeConfig config = Config();
  config.read_timeout_ms = 100;  // The slow peer, not the deadline, trips.
  config.request_deadline_ms = 5000;
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  // The attacker sends a header fragment and then goes silent.
  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  const std::string fragment = "POST /v1/revise HTTP/1.1\r\nHost:";
  ASSERT_EQ(::send(fd, fragment.data(), fragment.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(fragment.size()));
  // Typed 408 or a clean close — either way the worker is released.
  const std::string answer = DrainFd(fd);
  ::close(fd);
  if (!answer.empty()) {
    EXPECT_NE(answer.find("408"), std::string::npos) << answer;
  }
  // The worker survived and keeps serving.
  Result<ParsedHttpResponse> health =
      HttpFetch(server.port(), "GET", "/healthz", "");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  EXPECT_GE(server.stats().requests_deadline.load(), 1u);
  server.RequestDrain();
  server.AwaitDrain();
}

TEST_F(ServeChaosTest, TornMidBodyWriteIsTyped400) {
  ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  // Claim 100 body bytes, deliver 10, then half-close: the server sees a
  // torn request, not a timeout.
  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  const std::string torn =
      "POST /v1/revise HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789";
  ASSERT_EQ(::send(fd, torn.data(), torn.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(torn.size()));
  ::shutdown(fd, SHUT_WR);
  const std::string answer = DrainFd(fd);
  ::close(fd);
  EXPECT_NE(answer.find("400"), std::string::npos) << answer;

  Result<ParsedHttpResponse> health =
      HttpFetch(server.port(), "GET", "/healthz", "");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  server.RequestDrain();
  server.AwaitDrain();
}

TEST_F(ServeChaosTest, ClientRstAfterRequestIsAbsorbedByTheServer) {
  ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  // rate=1.0 arms the RST site on every connection: the client sends a
  // full request, then hard-resets instead of reading the response.
  FetchOptions options;
  options.chaos = Plan("rate=1.0,seed=5,sites=chaos.rst");
  options.retry.max_attempts = 1;
  options.request_id = 9;
  const FetchOutcome outcome =
      FetchWithRetry(server.port(), "POST", "/v1/revise", BodyFor(2), options);
  EXPECT_FALSE(outcome.response.ok());
  EXPECT_NE(outcome.response.status().message().find("chaos.rst"),
            std::string::npos);

  // The RST is the client's problem: the server absorbed it and serves the
  // next (chaos-free) exchange byte-identically.
  Result<ParsedHttpResponse> revise =
      HttpFetch(server.port(), "POST", "/v1/revise", BodyFor(2));
  ASSERT_TRUE(revise.ok()) << revise.status();
  EXPECT_EQ(revise->status, 200);
  EXPECT_EQ(revise->body, ExpectedFor(2));
  server.RequestDrain();
  server.AwaitDrain();
}

TEST_F(ServeChaosTest, ServerSideChaosStillAnswersByteIdentical) {
  // Worker-side chaos (dripped reads, torn writes, EINTR storms) on every
  // connection: the robust I/O loops must still produce the exact batch
  // bytes. The RST site is in the plan but the server masks it out — an
  // admitted connection is never torn down on purpose.
  ServeConfig config = Config();
  config.fault_plan = Plan(
      "rate=1.0,seed=3,continuation=0.7,"
      "sites=chaos.read+chaos.write+chaos.eintr+chaos.rst");
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());
  for (int i = 0; i < 4; ++i) {
    Result<ParsedHttpResponse> revise =
        HttpFetch(server.port(), "POST", "/v1/revise", BodyFor(3));
    ASSERT_TRUE(revise.ok()) << revise.status();
    EXPECT_EQ(revise->status, 200);
    EXPECT_EQ(revise->body, ExpectedFor(3));
  }
  server.RequestDrain();
  server.AwaitDrain();
}

TEST_F(ServeChaosTest, ResilientClientRecoversThroughChaos) {
  ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  // Each logical request gets an independent per-attempt chaos stream:
  // even at a 50% RST rate, six attempts make recovery overwhelmingly
  // likely, and the whole schedule is a pure function of (seed,
  // request_id) — reruns see the same outcomes.
  int answered = 0;
  int recovered = 0;
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    FetchOptions options;
    options.chaos = Plan("rate=0.5,seed=29,sites=chaos.rst");
    options.retry.max_attempts = 6;
    options.retry.initial_backoff_us = 100;
    options.request_id = static_cast<uint64_t>(i);
    const FetchOutcome outcome = FetchWithRetry(
        server.port(), "POST", "/v1/revise", BodyFor(1), options);
    if (outcome.answered()) {
      ++answered;
      EXPECT_EQ(outcome.response->body, ExpectedFor(1));
      if (outcome.attempts > 1) ++recovered;
    }
  }
  EXPECT_GE(answered, kRequests - 2);  // >= 90% availability under chaos.
  EXPECT_GE(recovered, 1);  // At least one request needed (and won) a retry.
  server.RequestDrain();
  server.AwaitDrain();
}

TEST_F(ServeChaosTest, NonIdempotentFetchNeverReplaysAfterSend) {
  ServeConfig config = Config();
  ModelHost host(config.checkpoint, config.coach);
  ASSERT_TRUE(host.Load().ok());
  RevisionServer server(config, &host);
  ASSERT_TRUE(server.StartServing().ok());

  // The RST fires after the full request went out. A non-idempotent caller
  // must not replay it, whatever the retry budget says.
  FetchOptions options;
  options.chaos = Plan("rate=1.0,seed=5,sites=chaos.rst");
  options.retry.max_attempts = 6;
  options.idempotent = false;
  options.request_id = 9;
  const FetchOutcome outcome =
      FetchWithRetry(server.port(), "POST", "/v1/revise", BodyFor(1), options);
  EXPECT_FALSE(outcome.response.ok());
  EXPECT_EQ(outcome.attempts, 1);
  server.RequestDrain();
  server.AwaitDrain();
}

TEST(FetchRetryTest, ConnectRefusedBackoffScheduleIsDeterministic) {
  // Find a port with no listener: bind ephemeral, note it, close.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int dead_port = ntohs(addr.sin_port);
  ::close(probe);

  FakeClock clock;
  FetchOptions options;
  options.clock = &clock;
  options.request_id = 77;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_us = 1000;
  const FetchOutcome outcome =
      FetchWithRetry(dead_port, "GET", "/healthz", "", options);
  EXPECT_FALSE(outcome.response.ok());
  EXPECT_EQ(outcome.response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(outcome.attempts, 4);
  // The backoff schedule is exactly RetryPolicy's deterministic ladder,
  // and every sleep landed on the injected clock.
  int64_t expected = 0;
  for (int next = 2; next <= 4; ++next) {
    expected += options.retry.BackoffMicros(next, options.request_id);
  }
  EXPECT_EQ(outcome.backoff_micros, expected);
  EXPECT_EQ(clock.elapsed_micros(), expected);
}

}  // namespace
}  // namespace serve
}  // namespace coachlm
