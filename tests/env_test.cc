#include "common/env.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace {

// COACHLM_SCALE is read once and cached; tests exercise the default path
// (the variable is unset under ctest) and the arithmetic around it.

TEST(EnvTest, DefaultScaleIsOne) {
  EXPECT_GT(ExperimentScale(), 0.0);
  EXPECT_LE(ExperimentScale(), 1.0);
}

TEST(EnvTest, ScaledRespectsFloor) {
  EXPECT_GE(Scaled(100, 10), 10u);
  EXPECT_GE(Scaled(0, 5), 5u);
}

TEST(EnvTest, ScaledIsMonotone) {
  EXPECT_LE(Scaled(100), Scaled(200));
}

TEST(EnvTest, GetEnvOrFallsBack) {
  EXPECT_EQ(GetEnvOr("COACHLM_DOES_NOT_EXIST_XYZ", "fallback"), "fallback");
}

TEST(EnvTest, GetEnvOrReadsRealVariable) {
  // PATH exists in any sane test environment.
  EXPECT_NE(GetEnvOr("PATH", ""), "");
}

}  // namespace
}  // namespace coachlm
