#include "expert/reviser.h"

#include <gtest/gtest.h>

#include "synth/defect.h"
#include "synth/generator.h"
#include "text/lexicons.h"
#include "text/string_util.h"

namespace coachlm {
namespace expert {
namespace {

class ReviserTest : public ::testing::Test {
 protected:
  ReviserTest() : reviser_(&engine_), rng_(99) {}

  InstructionPair CleanPair(Category category, uint64_t seed) {
    Rng rng(seed);
    synth::ResponseRichness richness;
    richness.explanations = 3;
    richness.closing = true;
    return engine_.BuildCleanPair(seed, category,
                                  synth::Topics()[seed % synth::Topics().size()],
                                  richness, &rng);
  }

  InstructionPair Damaged(Category category, synth::DefectType defect,
                          uint64_t seed) {
    InstructionPair pair = CleanPair(category, seed);
    synth::DefectInjector injector(&engine_);
    Rng rng(seed + 1);
    EXPECT_TRUE(injector.Apply(defect, &pair, &rng));
    return pair;
  }

  synth::ContentEngine engine_;
  ExpertReviser reviser_;
  Rng rng_;
};

TEST_F(ReviserTest, CleanRichPairNeedsNoRevision) {
  const InstructionPair pair = CleanPair(Category::kGeneralQa, 3);
  EXPECT_FALSE(reviser_.IsLacking(pair));
  const RevisionOutcome outcome = reviser_.Revise(pair, &rng_);
  EXPECT_FALSE(outcome.revised);
  EXPECT_EQ(outcome.revised_pair, pair);
}

TEST_F(ReviserTest, DetectsInjectedDefects) {
  EXPECT_TRUE(reviser_.IsLacking(
      Damaged(Category::kHowToGuide, synth::DefectType::kTruncatedResponse, 5)));
  EXPECT_TRUE(reviser_.IsLacking(
      Damaged(Category::kGeneralQa, synth::DefectType::kFactualError, 7)));
  EXPECT_TRUE(reviser_.IsLacking(
      Damaged(Category::kGeneralQa, synth::DefectType::kMechanicalTone, 9)));
}

TEST_F(ReviserTest, RevisionReachesTargetScore) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    const InstructionPair damaged = Damaged(
        Category::kHowToGuide, synth::DefectType::kMissingExplanation, seed);
    const RevisionOutcome outcome = reviser_.Revise(damaged, &rng_);
    ASSERT_TRUE(outcome.revised);
    EXPECT_GE(outcome.final_quality.response.score, 93.0)
        << outcome.revised_pair.output;
    EXPECT_FALSE(outcome.final_quality.response.HasBasicFlaw());
  }
}

TEST_F(ReviserTest, FactCorrectionRestoresTruth) {
  const InstructionPair damaged =
      Damaged(Category::kGeneralQa, synth::DefectType::kFactualError, 21);
  const RevisionOutcome outcome = reviser_.Revise(damaged, &rng_);
  ASSERT_TRUE(outcome.revised);
  ASSERT_TRUE(outcome.response_type.has_value());
  // Fact repair is the primary type; the wrong fact is gone.
  EXPECT_EQ(*outcome.response_type, ResponseRevisionType::kCorrectFacts);
  for (const synth::Topic& topic : synth::Topics()) {
    EXPECT_FALSE(strings::Contains(outcome.revised_pair.output,
                                   topic.wrong_fact));
  }
}

TEST_F(ReviserTest, ToneRepairStripsOpenerAndAddsWarmth) {
  const InstructionPair damaged =
      Damaged(Category::kGeneralQa, synth::DefectType::kMechanicalTone, 23);
  const RevisionOutcome outcome = reviser_.Revise(damaged, &rng_);
  ASSERT_TRUE(outcome.revised);
  for (const std::string& opener : lexicons::MechanicalOpeners()) {
    EXPECT_FALSE(strings::StartsWith(outcome.revised_pair.output, opener));
  }
  EXPECT_GT(outcome.final_quality.response.Satisfaction(
                quality::Dimension::kHumanization),
            0.5);
}

TEST_F(ReviserTest, AmbiguousInstructionGetsDisambiguated) {
  const InstructionPair damaged = Damaged(
      Category::kGeneralQa, synth::DefectType::kAmbiguousInstruction, 25);
  const RevisionOutcome outcome = reviser_.Revise(damaged, &rng_);
  ASSERT_TRUE(outcome.revised);
  ASSERT_TRUE(outcome.instruction_type.has_value());
  EXPECT_EQ(*outcome.instruction_type,
            InstructionRevisionType::kRewriteFeasibility);
  EXPECT_GT(outcome.final_quality.instruction.Satisfaction(
                quality::Dimension::kFeasibility),
            0.99);
}

TEST_F(ReviserTest, SpellingRepairIsReadabilityAdjust) {
  const InstructionPair damaged =
      Damaged(Category::kSummarization,
              synth::DefectType::kInstructionSpellingNoise, 27);
  const RevisionOutcome outcome = reviser_.Revise(damaged, &rng_);
  ASSERT_TRUE(outcome.revised);
  ASSERT_TRUE(outcome.instruction_type.has_value());
  EXPECT_EQ(*outcome.instruction_type,
            InstructionRevisionType::kAdjustReadability);
}

TEST_F(ReviserTest, MathFactErrorRecomputed) {
  synth::ContentEngine engine;
  Rng build_rng(31);
  InstructionPair pair = engine.BuildCleanPair(
      1, Category::kMathProblem, synth::Topics()[0],
      synth::ResponseRichness{1, false, false}, &build_rng);
  synth::DefectInjector injector(&engine);
  Rng defect_rng(32);
  ASSERT_TRUE(injector.Apply(synth::DefectType::kFactualError, &pair,
                             &defect_rng));
  ASSERT_TRUE(reviser_.IsLacking(pair));
  const RevisionOutcome outcome = reviser_.Revise(pair, &rng_);
  EXPECT_GT(outcome.final_quality.response.Satisfaction(
                quality::Dimension::kCorrectness),
            0.99);
}

TEST_F(ReviserTest, RevisionTypeNamesAreStable) {
  EXPECT_NE(InstructionRevisionTypeName(
                InstructionRevisionType::kAdjustReadability)
                .find("readability"),
            std::string::npos);
  EXPECT_NE(ResponseRevisionTypeName(ResponseRevisionType::kDiversifyExpand)
                .find("Diversify"),
            std::string::npos);
}

}  // namespace
}  // namespace expert
}  // namespace coachlm
