#include "coach/alpha_selection.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace coach {
namespace {

RevisionDataset MakeRevisions(size_t n) {
  RevisionDataset revisions;
  for (size_t i = 0; i < n; ++i) {
    RevisionRecord record;
    record.original.id = i + 1;
    record.char_edit_distance = (i * 37) % 500;  // scrambled distances
    revisions.push_back(record);
  }
  return revisions;
}

TEST(AlphaSelectionTest, AlphaCounts) {
  EXPECT_EQ(AlphaCount(100, 0.0), 0u);
  EXPECT_EQ(AlphaCount(100, 0.3), 30u);
  EXPECT_EQ(AlphaCount(100, 1.0), 100u);
  EXPECT_EQ(AlphaCount(100, 2.0), 100u);   // clamped
  EXPECT_EQ(AlphaCount(100, -0.5), 0u);    // clamped
  EXPECT_EQ(AlphaCount(7, 0.5), 4u);       // rounds
}

TEST(AlphaSelectionTest, ZeroAlphaEmpty) {
  EXPECT_TRUE(SelectTopAlpha(MakeRevisions(50), 0.0).empty());
}

TEST(AlphaSelectionTest, FullAlphaKeepsAll) {
  EXPECT_EQ(SelectTopAlpha(MakeRevisions(50), 1.0).size(), 50u);
}

TEST(AlphaSelectionTest, SelectsHighestEditDistances) {
  const RevisionDataset all = MakeRevisions(100);
  const RevisionDataset top = SelectTopAlpha(all, 0.2);
  ASSERT_EQ(top.size(), 20u);
  // Every selected distance >= every unselected distance.
  size_t min_selected = SIZE_MAX;
  for (const RevisionRecord& r : top) {
    min_selected = std::min(min_selected, r.char_edit_distance);
  }
  std::set<uint64_t> selected_ids;
  for (const RevisionRecord& r : top) selected_ids.insert(r.original.id);
  for (const RevisionRecord& r : all) {
    if (selected_ids.count(r.original.id) == 0) {
      EXPECT_LE(r.char_edit_distance, min_selected);
    }
  }
}

TEST(AlphaSelectionTest, SortedDescending) {
  const RevisionDataset top = SelectTopAlpha(MakeRevisions(100), 0.5);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].char_edit_distance, top[i].char_edit_distance);
  }
}

TEST(AlphaSelectionTest, MonotoneInAlpha) {
  const RevisionDataset all = MakeRevisions(80);
  size_t prev = 0;
  for (double alpha : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const size_t n = SelectTopAlpha(all, alpha).size();
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(AlphaSelectionTest, DeterministicTieBreaks) {
  RevisionDataset ties = MakeRevisions(10);
  for (RevisionRecord& r : ties) r.char_edit_distance = 5;  // all equal
  const RevisionDataset a = SelectTopAlpha(ties, 0.5);
  const RevisionDataset b = SelectTopAlpha(ties, 0.5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].original.id, b[i].original.id);
  }
  // Ties break by ascending id.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1].original.id, a[i].original.id);
  }
}

}  // namespace
}  // namespace coach
}  // namespace coachlm
