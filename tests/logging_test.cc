#include "common/logging.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace {

TEST(LoggingTest, LevelThresholdRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamMacroBuildsMessage) {
  // Suppress output; the macro must still evaluate its operands.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  COACHLM_LOG_DEBUG << "value " << ++evaluations;
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(LoggingTest, EmitBelowThresholdIsSilentlyDropped) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  LogMessage(LogLevel::kInfo, "should not crash");
  LogMessage(LogLevel::kError, "also fine");
  SetLogLevel(original);
}

}  // namespace
}  // namespace coachlm
