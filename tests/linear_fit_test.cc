#include "common/linear_fit.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace coachlm {
namespace {

TEST(LinearFitTest, ExactLine) {
  auto fit = FitLine({0, 1, 2, 3}, {1, 3, 5, 7});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->Predict(10), 21.0, 1e-12);
}

TEST(LinearFitTest, SolveForX) {
  auto fit = FitLine({0, 1}, {0, 2});
  ASSERT_TRUE(fit.ok());
  auto x = fit->SolveForX(4.0);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(*x, 2.0, 1e-12);
}

TEST(LinearFitTest, FlatLineCannotInvert) {
  auto fit = FitLine({0, 1, 2}, {5, 5, 5});
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->slope, 0.0);
  EXPECT_FALSE(fit->SolveForX(7.0).ok());
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);  // constant y fitted exactly
}

TEST(LinearFitTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitLine({1}, {1}).ok());
  EXPECT_FALSE(FitLine({1, 2}, {1}).ok());
  EXPECT_FALSE(FitLine({3, 3, 3}, {1, 2, 3}).ok());
}

TEST(LinearFitTest, NoisyDataRSquaredBelowOne) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 10 + rng.NextGaussian(0, 5));
  }
  auto fit = FitLine(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 3.0, 0.05);
  EXPECT_GT(fit->r_squared, 0.99);
  EXPECT_LT(fit->r_squared, 1.0);
}

}  // namespace
}  // namespace coachlm
