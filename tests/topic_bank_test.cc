#include "synth/topic_bank.h"

#include <gtest/gtest.h>

#include <set>

namespace coachlm {
namespace synth {
namespace {

TEST(TopicBankTest, BankIsLargeAndComplete) {
  const auto& topics = Topics();
  EXPECT_GE(topics.size(), 40u);
  for (const Topic& topic : topics) {
    EXPECT_FALSE(topic.name.empty());
    EXPECT_FALSE(topic.domain.empty());
    EXPECT_FALSE(topic.fact.empty());
    EXPECT_FALSE(topic.wrong_fact.empty());
    EXPECT_NE(topic.fact, topic.wrong_fact);
    EXPECT_GE(topic.details.size(), 3u) << topic.name;
  }
}

TEST(TopicBankTest, NamesUnique) {
  std::set<std::string> names;
  for (const Topic& topic : Topics()) {
    EXPECT_TRUE(names.insert(topic.name).second) << topic.name;
  }
}

TEST(TopicBankTest, CoversMultipleDomains) {
  std::set<std::string> domains;
  for (const Topic& topic : Topics()) domains.insert(topic.domain);
  EXPECT_GE(domains.size(), 5u);
}

TEST(TopicBankTest, FindTopicInMatchesByName) {
  const Topic* topic = FindTopicIn("Please explain photosynthesis briefly.");
  ASSERT_NE(topic, nullptr);
  EXPECT_EQ(topic->name, "photosynthesis");
  EXPECT_EQ(FindTopicIn("nothing relevant here"), nullptr);
}

TEST(TopicBankTest, OwnershipByNameFactAndDetail) {
  const Topic* topic = FindTopicIn("gravity");
  ASSERT_NE(topic, nullptr);
  EXPECT_TRUE(TopicOwnsText(*topic, "I study gravity daily."));
  EXPECT_TRUE(TopicOwnsText(*topic, "Background: " + topic->fact));
  EXPECT_TRUE(TopicOwnsText(*topic, topic->details[0]));
  EXPECT_TRUE(TopicOwnsText(*topic, topic->wrong_fact));
  EXPECT_FALSE(TopicOwnsText(*topic, "completely unrelated prose"));
}

TEST(TopicBankTest, OwnershipIsCaseInsensitive) {
  const Topic* topic = FindTopicIn("gravity");
  ASSERT_NE(topic, nullptr);
  std::string decap = topic->details[0];
  decap[0] = static_cast<char>(std::tolower(decap[0]));
  EXPECT_TRUE(TopicOwnsText(*topic, "For example, " + decap));
}

TEST(TopicBankTest, FindOwningTopic) {
  const Topic* gravity = FindTopicIn("gravity");
  ASSERT_NE(gravity, nullptr);
  const Topic* found = FindOwningTopic("Note: " + gravity->details[1]);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, "gravity");
  EXPECT_EQ(FindOwningTopic("xyzzy plugh"), nullptr);
}

}  // namespace
}  // namespace synth
}  // namespace coachlm
