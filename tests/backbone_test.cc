#include "lm/backbone.h"

#include <gtest/gtest.h>

#include "synth/topic_bank.h"
#include "text/string_util.h"

namespace coachlm {
namespace lm {
namespace {

TEST(BackboneTest, ProfilesOrderByStrength) {
  EXPECT_LT(Llama7B().knowledge_coverage, ChatGlm6B().knowledge_coverage);
  EXPECT_LT(ChatGlm6B().knowledge_coverage, ChatGlm26B().knowledge_coverage);
  EXPECT_GT(Llama7B().fluency_noise, ChatGlm26B().fluency_noise);
}

TEST(BackboneTest, StrongerBackboneRemembersMore) {
  const BackboneModel weak(Llama7B());
  const BackboneModel strong(ChatGlm26B());
  size_t weak_sentences = 0, strong_sentences = 0;
  // num_docs can coincide; compare retrievable content for a fixed query.
  for (const synth::Topic& topic : synth::Topics()) {
    weak_sentences += weak.RetrieveRelevant("Explain " + topic.name + ".",
                                            "", 10).size();
    strong_sentences += strong.RetrieveRelevant("Explain " + topic.name + ".",
                                                "", 10).size();
  }
  EXPECT_GT(strong_sentences, weak_sentences);
}

TEST(BackboneTest, RetrievalFindsTopicalContent) {
  const BackboneModel model(ChatGlm26B());
  const auto sentences = model.RetrieveRelevant(
      "Give a step-by-step guide to getting started with gardening.", "", 3);
  ASSERT_FALSE(sentences.empty());
  const synth::Topic* gardening = synth::FindTopicIn("gardening");
  ASSERT_NE(gardening, nullptr);
  for (const std::string& s : sentences) {
    EXPECT_TRUE(synth::TopicOwnsText(*gardening, s)) << s;
  }
}

TEST(BackboneTest, RetrievalRefusesUnknownSubjects) {
  const BackboneModel model(ChatGlm26B());
  EXPECT_TRUE(model.RetrieveRelevant("Calculate 12 + 7 now.", "", 3).empty());
  EXPECT_TRUE(model.RetrieveRelevant("zxqv plugh", "", 3).empty());
}

TEST(BackboneTest, RetrievalSkipsExistingContentCaseInsensitively) {
  const BackboneModel model(ChatGlm26B());
  const std::string context = "Explain photosynthesis to a student.";
  const auto first = model.RetrieveRelevant(context, "", 2);
  ASSERT_FALSE(first.empty());
  std::string existing = first[0];
  existing[0] = static_cast<char>(std::tolower(existing[0]));
  const auto second = model.RetrieveRelevant(context, existing, 5);
  for (const std::string& s : second) EXPECT_NE(s, first[0]);
}

TEST(BackboneTest, TopicalAgreementSeparatesOnFromOffTopic) {
  const BackboneModel model(ChatGlm26B());
  const synth::Topic* gravity = synth::FindTopicIn("gravity");
  const synth::Topic* chess = synth::FindTopicIn("chess strategy");
  ASSERT_NE(gravity, nullptr);
  ASSERT_NE(chess, nullptr);
  const std::string question = "Explain gravity in simple terms.";
  const double on_topic =
      model.TopicalAgreement(question, gravity->fact + " " + gravity->details[0]);
  const double off_topic =
      model.TopicalAgreement(question, chess->fact + " " + chess->details[0]);
  EXPECT_GT(on_topic, off_topic + 0.1);
}

TEST(BackboneTest, CodeQuestionsAgreeThroughIdentifiers) {
  const BackboneModel model(ChatGlm26B());
  const std::string question =
      "Find and fix the bug in the following Python function.\n"
      "def fibonacci(n):\n    sequence = []";
  const std::string answer = "def fibonacci(n):\n    sequence = []\n"
                             "    a, b = 0, 1";
  EXPECT_GT(model.TopicalAgreement(question, answer), 0.3);
}

TEST(BackboneTest, FluencyNoiseDeterministicAndBounded) {
  const BackboneModel model(Llama7B());
  const std::string sentence = "The government will receive the report.";
  size_t corrupted = 0;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    if (model.ApplyFluencyNoise(sentence, &rng) != sentence) ++corrupted;
  }
  EXPECT_NEAR(static_cast<double>(corrupted) / 2000.0,
              Llama7B().fluency_noise, 0.03);
}

TEST(BackboneTest, DegenerationRateMatchesProfile) {
  const BackboneModel model(ChatGlm26B());
  Rng rng(6);
  size_t degenerate = 0;
  for (int i = 0; i < 20000; ++i) {
    if (model.DegeneratesThisCall(&rng)) ++degenerate;
  }
  EXPECT_NEAR(static_cast<double>(degenerate) / 20000.0,
              ChatGlm26B().invalid_output_rate, 0.005);
}

}  // namespace
}  // namespace lm
}  // namespace coachlm
