#include "expert/filtering.h"

#include <gtest/gtest.h>

#include "synth/defect.h"
#include "synth/generator.h"

namespace coachlm {
namespace expert {
namespace {

InstructionPair Pair(const std::string& instruction,
                     const std::string& input = "",
                     const std::string& output = "fine answer.") {
  InstructionPair pair;
  pair.instruction = instruction;
  pair.input = input;
  pair.output = output;
  return pair;
}

TEST(FilteringTest, PassesOrdinaryPairs) {
  PreliminaryFilter filter;
  EXPECT_FALSE(filter.Classify(Pair("Explain gravity.")).has_value());
}

TEST(FilteringTest, DetectsEachExclusionReason) {
  PreliminaryFilter filter;
  EXPECT_EQ(*filter.Classify(Pair("Generate a creative title.",
                                  "[Link to an article]")),
            ExclusionReason::kInvalidInput);
  EXPECT_EQ(*filter.Classify(
                Pair("Generate the chords for an E minor scale in drop-D "
                     "tuning.")),
            ExclusionReason::kBeyondExpertise);
  EXPECT_EQ(*filter.Classify(Pair(
                "From the given lyrics, create a haiku poem preserving "
                "every image.")),
            ExclusionReason::kMassiveWorkload);
  EXPECT_EQ(*filter.Classify(Pair("List the products in the photo.",
                                  "(binary attachment)")),
            ExclusionReason::kMultiModal);
  EXPECT_EQ(*filter.Classify(Pair("Explain untraceable poison options.")),
            ExclusionReason::kSafety);
}

TEST(FilteringTest, SafetyChecksResponseToo) {
  PreliminaryFilter filter;
  EXPECT_EQ(*filter.Classify(Pair("Give advice.", "",
                                  "Buy this guaranteed stock tip today.")),
            ExclusionReason::kSafety);
}

TEST(FilteringTest, RetentionKeepsSomeExcludablePairs) {
  PreliminaryFilter filter(/*retain_probability=*/0.5);
  Rng rng(7);
  size_t retained = 0;
  for (int i = 0; i < 200; ++i) {
    bool was_retained = false;
    const auto reason = filter.Screen(
        Pair("List the products in the photo."), &rng, &was_retained);
    if (was_retained) {
      EXPECT_FALSE(reason.has_value());
      ++retained;
    }
  }
  EXPECT_NEAR(static_cast<double>(retained) / 200.0, 0.5, 0.1);
}

TEST(FilteringTest, StatsRatios) {
  FilterStats stats;
  stats.excluded[ExclusionReason::kInvalidInput] = 30;
  stats.excluded[ExclusionReason::kSafety] = 10;
  EXPECT_EQ(stats.TotalExcluded(), 40u);
  EXPECT_DOUBLE_EQ(stats.Ratio(ExclusionReason::kInvalidInput), 0.75);
  EXPECT_DOUBLE_EQ(stats.Ratio(ExclusionReason::kMultiModal), 0.0);
}

TEST(FilteringTest, CatchesInjectedExclusionDefects) {
  // Every pair the generator marks as exclusion-class must be caught by
  // the text-analysis filter — without looking at provenance.
  synth::CorpusConfig config;
  config.size = 2000;
  const auto corpus = synth::SynthCorpusGenerator(config).Generate();
  PreliminaryFilter filter;
  size_t excluded_class = 0, caught = 0, false_positives = 0;
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    const bool is_excluded = corpus.IsExcludedClass(i);
    const bool flagged = filter.Classify(corpus.dataset[i]).has_value();
    if (is_excluded) {
      ++excluded_class;
      if (flagged) ++caught;
    } else if (flagged) {
      ++false_positives;
    }
  }
  ASSERT_GT(excluded_class, 100u);
  EXPECT_GT(static_cast<double>(caught) / excluded_class, 0.95);
  EXPECT_LT(static_cast<double>(false_positives) /
                (corpus.dataset.size() - excluded_class),
            0.02);
}

TEST(FilteringTest, ReasonNamesMatchTableThree) {
  EXPECT_EQ(ExclusionReasonName(ExclusionReason::kInvalidInput),
            "Invalid Input");
  EXPECT_EQ(ExclusionReasonName(ExclusionReason::kSafety), "Safety");
}

}  // namespace
}  // namespace expert
}  // namespace coachlm
