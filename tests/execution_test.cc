#include "common/execution.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

namespace coachlm {
namespace {

TEST(StreamSeedTest, DeriveMatchesTheHistoricIdiom) {
  // The derivation must stay bit-compatible with the inlined expression
  // the coach inference path shipped with — checkpointed corpora depend
  // on it.
  const uint64_t seed = 1234;
  const uint64_t id = 77;
  EXPECT_EQ(DeriveStreamSeed(seed, id),
            seed ^ (id * 0x9E3779B97F4A7C15ULL));
}

TEST(StreamSeedTest, DistinctIdsYieldDistinctStreams) {
  const uint64_t seed = 42;
  EXPECT_NE(DeriveStreamSeed(seed, 1), DeriveStreamSeed(seed, 2));
  Rng a = DeriveRng(seed, 1);
  Rng b = DeriveRng(seed, 2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(StreamSeedTest, MixSeedDecouplesStageFamilies) {
  // Two stages keyed by the same (seed, id) must not replay each other's
  // streams once tagged.
  const uint64_t seed = 42;
  const uint64_t mixed = MixSeed(seed, 0x45585045);
  EXPECT_NE(mixed, seed);
  EXPECT_NE(DeriveStreamSeed(mixed, 5), DeriveStreamSeed(seed, 5));
  // And the finalizer is a bijection-grade mixer: different tags differ.
  EXPECT_NE(MixSeed(seed, 1), MixSeed(seed, 2));
}

TEST(ExecutionContextTest, SerialContextHasOneThread) {
  EXPECT_EQ(ExecutionContext::Serial().num_threads(), 1u);
}

TEST(ExecutionContextTest, DefaultContextHasAtLeastOneThread) {
  EXPECT_GE(ExecutionContext::Default().num_threads(), 1u);
}

TEST(ExecutionContextTest, ParallelForCoversEveryIndexExactlyOnce) {
  ExecutionContext exec(8);
  std::vector<std::atomic<int>> hits(5000);
  exec.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionContextTest, ParallelForRunsInlineWhenSerial) {
  ExecutionContext exec(1);
  std::vector<int> hits(100, 0);  // no atomics: single-threaded by contract
  exec.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecutionContextTest, ParallelForHonorsExplicitGrain) {
  ExecutionContext exec(4);
  std::vector<std::atomic<int>> hits(97);
  exec.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/10);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionContextTest, ParallelForZeroIsNoop) {
  ExecutionContext exec(4);
  bool called = false;
  exec.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ExecutionContextTest, ParallelMapPreservesIndexOrder) {
  ExecutionContext exec(8);
  const std::vector<std::string> out = exec.ParallelMap(
      1000, [](size_t i) { return "item-" + std::to_string(i); });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], "item-" + std::to_string(i));
  }
}

TEST(ExecutionContextTest, ParallelReduceFoldsInIndexOrder) {
  // The fold must be the exact serial left fold: with a non-commutative
  // fold function the result pins the order.
  ExecutionContext exec(8);
  const std::string folded = exec.ParallelReduce(
      26, [](size_t i) { return std::string(1, static_cast<char>('a' + i)); },
      std::string(),
      [](std::string* acc, std::string value, size_t) { *acc += value; });
  EXPECT_EQ(folded, "abcdefghijklmnopqrstuvwxyz");
}

TEST(ExecutionContextTest, ParallelReduceMatchesSerialFloatSum) {
  // Bit-identical floating-point aggregation across widths — the core
  // determinism contract of the execution layer.
  auto value = [](size_t i) {
    return 1.0 / static_cast<double>(i + 1) * ((i % 3 == 0) ? 1.0 : -0.5);
  };
  auto sum_with = [&](size_t threads) {
    ExecutionContext exec(threads);
    return exec.ParallelReduce(
        10000, value, 0.0,
        [](double* acc, double v, size_t) { *acc += v; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(8));
}

TEST(ExecutionContextTest, ParallelForStatusReportsLowestFailingIndex) {
  ExecutionContext exec(8);
  const Status status = exec.ParallelForStatus(1000, [](size_t i) {
    if (i == 700 || i == 31 || i == 999) {
      return Status::InvalidArgument("bad item " + std::to_string(i));
    }
    return Status::OK();
  });
  // Deterministic regardless of which failing index a thread hits first.
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("bad item 31"), std::string::npos);
}

TEST(ExecutionContextTest, ParallelForStatusOkWhenAllSucceed) {
  ExecutionContext exec(4);
  std::atomic<size_t> ran{0};
  const Status status = exec.ParallelForStatus(500, [&](size_t) {
    ran.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(ran.load(), 500u);
}

TEST(ExecutionContextTest, ParallelForStatusWorkerFailureDoesNotDeadlock) {
  // A failing item must not wedge the barrier: every invocation returns,
  // and repeated rounds with failures at different indices still complete.
  ExecutionContext exec(4);
  for (size_t bad = 0; bad < 40; bad += 7) {
    const Status status = exec.ParallelForStatus(40, [&](size_t i) {
      if (i == bad) return Status::Internal("boom " + std::to_string(i));
      return Status::OK();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "boom " + std::to_string(bad));
  }
}

TEST(ExecutionContextTest, ParallelForStatusSiblingsBeforeFailureComplete) {
  // Deterministic contract: items below the failing index always run, no
  // matter how the scheduler interleaved the chunks.
  ExecutionContext exec(4);
  constexpr size_t kBad = 350;
  std::atomic<size_t> ran_below{0};
  const Status status = exec.ParallelForStatus(
      500,
      [&](size_t i) {
        if (i < kBad) ran_below.fetch_add(1);
        if (i == kBad) return Status::Unavailable("down");
        return Status::OK();
      },
      /*grain=*/1);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ran_below.load(), kBad);
}

TEST(ExecutionContextTest, ParallelMapStatusCollectsEveryFailure) {
  // The graceful-degradation primitive: a failing item never stops its
  // siblings, and the per-item vector is in index order.
  ExecutionContext exec(4);
  std::atomic<size_t> ran{0};
  const std::vector<Status> statuses = exec.ParallelMapStatus(97, [&](size_t i) {
    ran.fetch_add(1);
    if (i % 10 == 3) return Status::Unavailable("flaky " + std::to_string(i));
    return Status::OK();
  });
  EXPECT_EQ(ran.load(), 97u);
  ASSERT_EQ(statuses.size(), 97u);
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (i % 10 == 3) {
      EXPECT_EQ(statuses[i].code(), StatusCode::kUnavailable);
      EXPECT_EQ(statuses[i].message(), "flaky " + std::to_string(i));
    } else {
      EXPECT_TRUE(statuses[i].ok());
    }
  }
}

TEST(ExecutionContextTest, ParallelMapStatusDeterministicAcrossWidths) {
  auto run = [](size_t threads) {
    ExecutionContext exec(threads);
    return exec.ParallelMapStatus(64, [](size_t i) {
      if (i % 9 == 0) return Status::Internal("bad " + std::to_string(i));
      return Status::OK();
    });
  };
  const std::vector<Status> serial = run(1);
  const std::vector<Status> wide = run(8);
  ASSERT_EQ(serial.size(), wide.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], wide[i]) << "index " << i;
  }
}

TEST(ExecutionContextTest, ConcurrentParallelForsOnDefaultDoNotInterfere) {
  // Nested use: a ParallelFor issued from inside another context's task
  // (via Default()) must not corrupt either call's completion tracking.
  ExecutionContext outer(4);
  std::atomic<size_t> total{0};
  outer.ParallelFor(8, [&](size_t) {
    ExecutionContext inner(2);
    inner.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 800u);
}

}  // namespace
}  // namespace coachlm
