// Resource governance: cooperative cancellation (deadline tokens, stall
// watchdog), retry-loop budget capping, commit backpressure, and the
// end-to-end contract — a deadline-budgeted revise pass quarantines the
// unreached remainder, leaves a valid checkpoint, and resumes to bytes
// identical to an unbudgeted run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "coach/coach_lm.h"
#include "coach/trainer.h"
#include "common/cancel.h"
#include "common/checkpoint.h"
#include "common/clock.h"
#include "common/execution.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/runtime.h"
#include "expert/pipeline.h"
#include "lm/pair_text.h"
#include "synth/generator.h"

namespace coachlm {
namespace {

namespace fs = std::filesystem;

TEST(CancelTokenTest, DeadlineExpiresOnInjectedClock) {
  FakeClock clock(1000);
  CancelToken token(&clock, 5000);
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.status().ok());
  EXPECT_EQ(token.remaining_micros(), 4000);

  clock.SleepMicros(3999);
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.remaining_micros(), 1);

  clock.SleepMicros(1);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.remaining_micros(), 0);
}

TEST(CancelTokenTest, FirstCauseWinsAcrossRacingCancels) {
  FakeClock clock;
  CancelToken token(&clock, 100);
  token.Cancel(Status::Cancelled("user abort"));
  clock.SleepMicros(1000);  // deadline also expired, but the cause is set
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
  token.Cancel(Status::Internal("late second cause"));
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, BareTokenHasNoDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.remaining_micros(), CancelToken::kNoDeadline);
}

TEST(StallWatchdogTest, TripsAfterQuietPeriodAndNamesStage) {
  FakeClock clock;
  CancelToken token;
  StallWatchdog watchdog(&clock, &token, "revise", /*stall_micros=*/10000);

  clock.SleepMicros(9000);
  EXPECT_FALSE(watchdog.Poll());
  watchdog.Tick();  // progress resets the stall window
  clock.SleepMicros(9000);
  EXPECT_FALSE(watchdog.Poll());
  EXPECT_FALSE(token.cancelled());

  clock.SleepMicros(2000);
  EXPECT_TRUE(watchdog.Poll());
  EXPECT_TRUE(watchdog.fired());
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(token.status().message().find("revise"), std::string::npos);

  // A second Poll reports the stall but does not rewrite the cause.
  const std::string cause = token.status().message();
  EXPECT_TRUE(watchdog.Poll());
  EXPECT_EQ(token.status().message(), cause);
}

TEST(RetryCancelTest, CancelledTokenShortCircuitsBeforeFirstAttempt) {
  FakeClock clock;
  CancelToken token;
  token.Cancel(Status::Cancelled("stop"));
  int calls = 0;
  const RetryOutcome outcome = RetryWithBackoff(
      RetryPolicy(), &clock, /*jitter_key=*/7,
      [&](int) {
        ++calls;
        return Status::OK();
      },
      &token);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
}

TEST(RetryCancelTest, BackoffNeverSleepsPastTheDeadline) {
  FakeClock clock;
  CancelToken token(&clock, 5000);
  RetryPolicy policy;
  policy.initial_backoff_us = 1000000;  // would overshoot the budget 200x
  int calls = 0;
  const RetryOutcome outcome = RetryWithBackoff(
      policy, &clock, /*jitter_key=*/7,
      [&](int) {
        ++calls;
        return Status::Unavailable("flaky");
      },
      &token);
  // One attempt, a backoff capped to the remaining budget, then the token
  // observed tripped: virtual time never passed the deadline.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(clock.NowMicros(), 5000);
}

TEST(ExecutionCancelTest, TrippedTokenSkipsRemainingItems) {
  const ExecutionContext& exec = ExecutionContext::Serial();
  CancelToken token;
  std::vector<int> ran(10, 0);
  const std::vector<Status> statuses = exec.ParallelMapStatus(
      ran.size(),
      [&](size_t i) {
        ran[i] = 1;
        if (i == 3) token.Cancel(Status::Cancelled("stop at 3"));
        return Status::OK();
      },
      /*grain=*/0, &token);
  for (size_t i = 0; i <= 3; ++i) {
    EXPECT_EQ(ran[i], 1) << i;
    EXPECT_TRUE(statuses[i].ok()) << i;
  }
  for (size_t i = 4; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i], 0) << i;
    EXPECT_EQ(statuses[i].code(), StatusCode::kCancelled) << i;
  }
}

TEST(RuntimeCancelTest, InactiveGovernedRuntimeStopsAdmittingWork) {
  PipelineRuntime runtime;
  CancelToken token;
  runtime.set_cancel_token(&token);
  EXPECT_FALSE(runtime.active());
  EXPECT_TRUE(runtime.governed());

  int calls = 0;
  EXPECT_TRUE(runtime
                  .Run(FaultSite::kRevise, 1,
                       [&] {
                         ++calls;
                         return Status::OK();
                       })
                  .ok());
  token.Cancel(Status::Cancelled("budget spent"));
  int attempts = -1;
  const Status refused = runtime.Run(
      FaultSite::kRevise, 2,
      [&] {
        ++calls;
        return Status::OK();
      },
      &attempts);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 0);
  EXPECT_EQ(refused.code(), StatusCode::kCancelled);
  // Cancellation refusals are not quarantined by the runtime — the stage
  // quarantines its remainder once, in index order.
  EXPECT_TRUE(runtime.quarantine().empty());
}

TEST(CommitBackpressureTest, AsyncCommitsLandInOrderAndResume) {
  const std::string dir =
      (fs::temp_directory_path() / "coachlm_gov_async_commit").string();
  fs::remove_all(dir);
  const std::string fingerprint = ConfigFingerprint("gov-async");
  {
    StageCheckpointer checkpoint(dir, "stage", fingerprint, 4);
    checkpoint.Resume();
    checkpoint.set_max_pending_commits(2);
    std::vector<std::string> all;
    for (size_t chunk = 0; chunk < 8; ++chunk) {
      std::vector<std::string> lines;
      for (size_t k = 0; k < 4; ++k) {
        // Payload lines must be valid JSONL: Resume() re-validates them.
        lines.push_back("\"item-" + std::to_string(chunk * 4 + k) + "\"");
      }
      all.insert(all.end(), lines.begin(), lines.end());
      checkpoint.CommitAsync((chunk + 1) * 4, std::move(lines));
    }
    ASSERT_TRUE(checkpoint.Drain().ok());
    StageCheckpointer reader(dir, "stage", fingerprint, 4);
    EXPECT_EQ(reader.Resume(), all);
  }
  // Watermark 0 degrades CommitAsync to synchronous commits.
  fs::remove_all(dir);
  {
    StageCheckpointer checkpoint(dir, "stage", fingerprint, 4);
    checkpoint.Resume();
    checkpoint.set_max_pending_commits(0);
    checkpoint.CommitAsync(2, {"\"a\"", "\"b\""});
    ASSERT_TRUE(fs::exists(checkpoint.manifest_path()));
    ASSERT_TRUE(checkpoint.Drain().ok());
    StageCheckpointer reader(dir, "stage", fingerprint, 4);
    EXPECT_EQ(reader.Resume(), (std::vector<std::string>{"\"a\"", "\"b\""}));
  }
  fs::remove_all(dir);
}

std::string DatasetBytes(const InstructionDataset& dataset) {
  std::string bytes;
  for (const auto& pair : dataset) {
    bytes += std::to_string(pair.id);
    bytes += '\x1f';
    bytes += lm::SerializePair(pair);
    bytes += '\x1e';
  }
  return bytes;
}

/// Shared corpus + trained coach + fault-free baseline, built once.
class DeadlineGovernanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::CorpusConfig config;
    config.size = 1500;
    config.seed = 42;
    synth::SynthCorpusGenerator generator(config);
    corpus_ = new synth::SynthCorpus(generator.Generate());
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 400;
    const auto study = expert::RunRevisionStudy(
        corpus_->dataset, generator.engine(), study_config);
    coach::CoachConfig coach_config;
    model_ = new coach::CoachLm(
        coach::CoachTrainer(coach_config).Train(study.revisions));
    ExecutionContext exec(4);
    baseline_ = new InstructionDataset(model_->ReviseDataset(
        corpus_->dataset, {}, nullptr, exec, /*runtime=*/nullptr,
        /*checkpoint=*/nullptr));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete model_;
    delete corpus_;
  }

  /// An active runtime whose injected transient faults carry virtual
  /// latency, so a FakeClock-driven run burns wall-clock budget
  /// deterministically with zero real waiting.
  static PipelineRuntime MakeLatentRuntime(FakeClock* clock) {
    FaultPlan plan;
    plan.transient_rate = 0.05;
    plan.seed = 9;
    plan.latency_us = 1000;
    return PipelineRuntime(FaultInjector(plan), RetryPolicy(), clock);
  }

  static synth::SynthCorpus* corpus_;
  static coach::CoachLm* model_;
  static InstructionDataset* baseline_;
};

synth::SynthCorpus* DeadlineGovernanceTest::corpus_ = nullptr;
coach::CoachLm* DeadlineGovernanceTest::model_ = nullptr;
InstructionDataset* DeadlineGovernanceTest::baseline_ = nullptr;

TEST_F(DeadlineGovernanceTest, BudgetedRunQuarantinesRemainderAndResumes) {
  const std::string dir =
      (fs::temp_directory_path() / "coachlm_gov_deadline_resume").string();
  fs::remove_all(dir);
  const std::string fingerprint = ConfigFingerprint("gov-deadline");
  const size_t n = corpus_->dataset.size();

  // Budgeted run: serial execution so virtual-time burn is deterministic;
  // the deadline trips mid-corpus, after some chunks have committed.
  size_t completed = 0;
  {
    FakeClock clock;
    PipelineRuntime runtime = MakeLatentRuntime(&clock);
    CancelToken token(&clock, 60000);
    runtime.set_cancel_token(&token);
    StageCheckpointer checkpoint(dir, "revise", fingerprint, 128);
    ExecutionContext exec(1);
    coach::RevisionPassStats stats;
    const InstructionDataset revised = model_->ReviseDataset(
        corpus_->dataset, {}, &stats, exec, &runtime, &checkpoint);

    // The pass terminated within the budget (cooperative: the clock may
    // sit exactly at the deadline, never beyond a backoff past it) and
    // never aborted: every pair is present, unreached ones unchanged.
    ASSERT_TRUE(token.cancelled());
    EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
    ASSERT_EQ(revised.size(), n);

    completed = n - stats.quarantined;
    ASSERT_GT(completed, 0u);
    ASSERT_LT(completed, n);
    for (size_t i = completed; i < n; ++i) {
      EXPECT_EQ(lm::SerializePair(revised[i]),
                lm::SerializePair(corpus_->dataset[i]));
    }
    // Exactly the remainder is quarantined, with the deadline as cause.
    const auto records = runtime.quarantine().records();
    ASSERT_EQ(records.size(), n - completed);
    for (const auto& record : records) {
      EXPECT_EQ(record.site, FaultSite::kRevise);
      EXPECT_EQ(record.code, StatusCode::kDeadlineExceeded);
    }
  }

  // The checkpoint left behind is a valid prefix journal: exactly the
  // completed items, in order.
  {
    StageCheckpointer reader(dir, "revise", fingerprint, 128);
    EXPECT_EQ(reader.Resume().size(), completed);
  }

  // Resume without a budget: only the remainder is recomputed and the
  // final dataset is byte-identical to the never-interrupted baseline.
  {
    StageCheckpointer checkpoint(dir, "revise", fingerprint, 128);
    ExecutionContext exec(4);
    coach::RevisionPassStats stats;
    const InstructionDataset resumed = model_->ReviseDataset(
        corpus_->dataset, {}, &stats, exec, /*runtime=*/nullptr, &checkpoint);
    EXPECT_EQ(stats.resumed, completed);
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(DatasetBytes(resumed), DatasetBytes(*baseline_));
  }
  fs::remove_all(dir);
}

TEST_F(DeadlineGovernanceTest, UncheckpointedBudgetedRunDegradesInPlace) {
  FakeClock clock;
  PipelineRuntime runtime = MakeLatentRuntime(&clock);
  CancelToken token(&clock, 60000);
  runtime.set_cancel_token(&token);
  ExecutionContext exec(1);
  coach::RevisionPassStats stats;
  const InstructionDataset revised =
      model_->ReviseDataset(corpus_->dataset, {}, &stats, exec, &runtime);

  ASSERT_TRUE(token.cancelled());
  ASSERT_EQ(revised.size(), corpus_->dataset.size());
  ASSERT_GT(stats.quarantined, 0u);
  ASSERT_LT(stats.quarantined, corpus_->dataset.size());
  // Cut-off items pass their originals through and land in quarantine with
  // the deadline cause; finished items match the fault-free baseline.
  EXPECT_EQ(runtime.quarantine().records().size(), stats.quarantined);
  for (const auto& record : runtime.quarantine().records()) {
    EXPECT_EQ(record.code, StatusCode::kDeadlineExceeded);
  }
  size_t cut_off = 0;
  for (size_t i = 0; i < revised.size(); ++i) {
    const std::string got = lm::SerializePair(revised[i]);
    if (got == lm::SerializePair((*baseline_)[i])) continue;
    EXPECT_EQ(got, lm::SerializePair(corpus_->dataset[i]));
    ++cut_off;
  }
  // <=, not ==: revision is the identity for some pairs, so a cut-off
  // item's original can coincide with its baseline bytes.
  EXPECT_LE(cut_off, stats.quarantined);
  EXPECT_GT(cut_off, 0u);
}

TEST_F(DeadlineGovernanceTest, WatchdogCancelsAFrozenStage) {
  // The stage "freezes": items stop Tick()ing because injected latency
  // burns virtual time while the watchdog's stall budget is tiny. Poll is
  // driven manually via a wrapper around the corpus walk.
  FakeClock clock;
  PipelineRuntime runtime = MakeLatentRuntime(&clock);
  CancelToken token;  // no deadline: only the watchdog can trip it
  StallWatchdog watchdog(&clock, &token, "revise", /*stall_micros=*/500);
  runtime.set_cancel_token(&token);
  runtime.set_watchdog(&watchdog);
  ExecutionContext exec(1);
  coach::RevisionPassStats stats;
  std::thread poller([&] {
    // Background poller against the fake clock: spins until the first
    // injected-latency sleep exceeds the stall budget.
    while (!watchdog.Poll()) {
      std::this_thread::yield();
    }
  });
  const InstructionDataset revised =
      model_->ReviseDataset(corpus_->dataset, {}, &stats, exec, &runtime);
  poller.join();

  ASSERT_TRUE(watchdog.fired());
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(token.status().message().find("revise"), std::string::npos);
  ASSERT_EQ(revised.size(), corpus_->dataset.size());
  EXPECT_GT(stats.quarantined, 0u);
}

}  // namespace
}  // namespace coachlm
