// Crash-only supervision coverage: the deterministic respawn backoff
// ladder, drain and crash/respawn lifecycles over real forked children,
// the restart circuit breaker, the SO_REUSEPORT fleet drill (SIGSEGV a
// worker mid-traffic, the resilient client rides it out), and the
// run-report merge that folds per-worker metrics into one fleet report.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "coach/coach_lm.h"
#include "coach/trainer.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/report.h"
#include "common/trace.h"
#include "expert/pipeline.h"
#include "json/json.h"
#include "serve/client.h"
#include "serve/model_host.h"
#include "serve/serve_config.h"
#include "serve/server.h"
#include "serve/supervisor.h"
#include "synth/generator.h"

namespace coachlm {
namespace serve {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Config validation and the deterministic backoff ladder.
// ---------------------------------------------------------------------------

TEST(SupervisorConfigTest, ValidateRejectsBadKnobs) {
  SupervisorConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.processes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.processes = 257;
  EXPECT_FALSE(config.Validate().ok());
  config = SupervisorConfig();
  config.restart_backoff_multiplier = 0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = SupervisorConfig();
  config.restart_max_backoff_ms = config.restart_initial_backoff_ms - 1;
  EXPECT_FALSE(config.Validate().ok());
  config = SupervisorConfig();
  config.restart_limit = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SupervisorConfig();
  config.restart_window_ms = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SupervisorConfig();
  config.poll_interval_ms = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SupervisorBackoffTest, DeterministicExponentialAndCapped) {
  SupervisorConfig config;
  config.restart_initial_backoff_ms = 100;
  config.restart_backoff_multiplier = 2.0;
  config.restart_max_backoff_ms = 5000;

  // Pure function of (config, failures, worker): reruns agree exactly.
  EXPECT_EQ(RestartBackoffMicros(config, 1, 0),
            RestartBackoffMicros(config, 1, 0));
  EXPECT_EQ(RestartBackoffMicros(config, 3, 2),
            RestartBackoffMicros(config, 3, 2));

  // Jittered exponential: each rung lands in [nominal/2, nominal], with
  // the nominal doubling per failure until the cap.
  for (int failures = 1; failures <= 8; ++failures) {
    const int64_t nominal =
        std::min<int64_t>(5000000, 100000LL << (failures - 1));
    const int64_t backoff = RestartBackoffMicros(config, failures, 0);
    EXPECT_GE(backoff, nominal / 2) << "failures=" << failures;
    EXPECT_LE(backoff, nominal) << "failures=" << failures;
  }

  // Worker index keys the jitter: crashing slots decorrelate.
  bool any_different = false;
  for (int failures = 1; failures <= 4 && !any_different; ++failures) {
    any_different = RestartBackoffMicros(config, failures, 0) !=
                    RestartBackoffMicros(config, failures, 1);
  }
  EXPECT_TRUE(any_different);
}

// ---------------------------------------------------------------------------
// Real forked children: drain, crash/respawn, circuit breaker.
// ---------------------------------------------------------------------------

/// A worker body that waits for the drain signal, then exits cleanly.
int DrainingWorker(int /*worker_index*/) {
  ResetServeSignalsForTest();
  InstallServeSignalHandlers();
  while (!ServeDrainSignalled()) {
    Clock::System()->SleepMicros(2000);
  }
  return 0;
}

TEST(WorkerSupervisorTest, DrainReturnsZeroAfterCleanFleetExit) {
  ResetServeSignalsForTest();
  SupervisorConfig config;
  config.processes = 3;
  config.poll_interval_ms = 5;
  WorkerSupervisor supervisor(config, DrainingWorker);
  ASSERT_TRUE(supervisor.Start().ok());
  EXPECT_EQ(supervisor.WorkerPids().size(), 3u);
  for (const pid_t pid : supervisor.WorkerPids()) EXPECT_GT(pid, 0);

  std::thread drainer([&supervisor] {
    Clock::System()->SleepMicros(50000);
    supervisor.RequestDrain();
  });
  EXPECT_EQ(supervisor.Run(), 0);
  drainer.join();
  EXPECT_EQ(supervisor.stats().spawned, 3u);
  EXPECT_EQ(supervisor.stats().crashed, 0u);
  EXPECT_EQ(supervisor.stats().respawned, 0u);
  EXPECT_FALSE(supervisor.stats().circuit_opened);
}

TEST(WorkerSupervisorTest, StartRejectsInvalidConfigAndDoubleStart) {
  SupervisorConfig bad;
  bad.processes = 0;
  WorkerSupervisor invalid(bad, DrainingWorker);
  EXPECT_FALSE(invalid.Start().ok());

  ResetServeSignalsForTest();
  SupervisorConfig config;
  config.processes = 1;
  config.poll_interval_ms = 5;
  WorkerSupervisor supervisor(config, DrainingWorker);
  ASSERT_TRUE(supervisor.Start().ok());
  EXPECT_EQ(supervisor.Start().code(), StatusCode::kFailedPrecondition);
  supervisor.RequestDrain();
  EXPECT_EQ(supervisor.Run(), 0);
}

TEST(WorkerSupervisorTest, CrashedWorkerIsRespawnedOnTheBackoffLadder) {
  ResetServeSignalsForTest();
  const std::string marker =
      (fs::temp_directory_path() /
       ("supervisor_respawn_" + std::to_string(::getpid())))
          .string();
  std::error_code ec;
  fs::remove(marker, ec);

  SupervisorConfig config;
  config.processes = 1;
  config.poll_interval_ms = 5;
  config.restart_initial_backoff_ms = 1;
  config.restart_max_backoff_ms = 10;
  // First life: drop a marker and die hard (abort). Second life: serve
  // until drained.
  auto body = [&marker](int index) -> int {
    if (!fs::exists(marker)) {
      std::ofstream(marker) << "died once";
      std::abort();
    }
    return DrainingWorker(index);
  };
  WorkerSupervisor supervisor(config, body);
  ASSERT_TRUE(supervisor.Start().ok());
  const pid_t first_pid = supervisor.WorkerPids()[0];

  std::thread runner([&supervisor] { EXPECT_EQ(supervisor.Run(), 0); });
  // Wait (bounded) for the respawned worker to appear under a fresh pid.
  pid_t second_pid = -1;
  for (int i = 0; i < 500; ++i) {
    const std::vector<pid_t> pids = supervisor.WorkerPids();
    if (pids[0] > 0 && pids[0] != first_pid) {
      second_pid = pids[0];
      break;
    }
    Clock::System()->SleepMicros(10000);
  }
  EXPECT_GT(second_pid, 0);
  supervisor.RequestDrain();
  runner.join();

  EXPECT_EQ(supervisor.stats().spawned, 2u);
  EXPECT_EQ(supervisor.stats().crashed, 1u);
  EXPECT_EQ(supervisor.stats().respawned, 1u);
  EXPECT_FALSE(supervisor.stats().circuit_opened);
  fs::remove(marker, ec);
}

TEST(WorkerSupervisorTest, CrashLoopTripsTheCircuitBreaker) {
  ResetServeSignalsForTest();
  SupervisorConfig config;
  config.processes = 2;
  config.poll_interval_ms = 2;
  config.restart_initial_backoff_ms = 1;
  config.restart_max_backoff_ms = 2;
  config.restart_limit = 3;
  config.restart_window_ms = 60000;
  // Every life exits nonzero immediately: a poisoned-config crash loop.
  WorkerSupervisor supervisor(config, [](int) -> int { return 1; });
  ASSERT_TRUE(supervisor.Start().ok());
  EXPECT_EQ(supervisor.Run(), kSupervisorCircuitExitCode);
  EXPECT_TRUE(supervisor.stats().circuit_opened);
  EXPECT_GE(supervisor.stats().crashed, 4u);  // > restart_limit deaths.
  // The fleet is fully reaped: no slot holds a live pid.
  for (const pid_t pid : supervisor.WorkerPids()) EXPECT_LT(pid, 0);
}

// ---------------------------------------------------------------------------
// The fleet drill: SO_REUSEPORT workers serving a real checkpoint, one
// SIGSEGVed mid-traffic, the resilient client rides it out.
// ---------------------------------------------------------------------------

TEST(WorkerSupervisorTest, FleetSurvivesSigsegvUnderTraffic) {
  ResetServeSignalsForTest();
  // A small trained checkpoint for the workers to serve.
  synth::CorpusConfig corpus_config;
  corpus_config.size = 200;
  corpus_config.seed = 42;
  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate();
  expert::RevisionStudyConfig study_config;
  study_config.sample_size = 60;
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(), study_config);
  coach::CoachConfig coach_config;
  coach_config.alpha = 0.3;
  const coach::CoachLm model(
      coach::CoachTrainer(coach_config).Train(study.revisions));
  const std::string checkpoint =
      (fs::temp_directory_path() /
       ("supervisor_fleet_coach_" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(model.SaveCheckpoint(checkpoint).ok());

  // A fixed port every worker can bind via SO_REUSEPORT (probed free).
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::bind(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(probe);

  ServeConfig serve_config;
  serve_config.port = port;
  serve_config.reuse_port = true;
  serve_config.checkpoint = checkpoint;
  serve_config.coach = model.config();
  serve_config.workers = 2;
  auto body = [&serve_config](int index) -> int {
    ResetServeSignalsForTest();
    InstallServeSignalHandlers();
    ModelHost models(serve_config.checkpoint, serve_config.coach);
    if (!models.Load().ok()) return 1;
    RevisionServer server(serve_config, &models);
    if (!server.StartServing().ok()) return 1 + index;
    server.AwaitDrain();
    return 0;
  };

  SupervisorConfig config;
  config.processes = 2;
  config.poll_interval_ms = 5;
  config.restart_initial_backoff_ms = 1;
  config.restart_max_backoff_ms = 20;
  WorkerSupervisor supervisor(config, body);
  ASSERT_TRUE(supervisor.Start().ok());
  std::thread runner([&supervisor] { EXPECT_EQ(supervisor.Run(), 0); });

  // Wait for the fleet to answer at all.
  FetchOptions boot;
  boot.retry.max_attempts = 30;
  boot.retry.initial_backoff_us = 20000;
  boot.retry.max_backoff_us = 100000;
  boot.request_id = 1;
  ASSERT_TRUE(FetchWithRetry(port, "GET", "/healthz", "", boot).answered());

  // SIGSEGV one worker mid-traffic; keep fetching through the crash. The
  // surviving listener answers, refused/reset attempts ride the retry
  // ladder, and the slot respawns on its deterministic backoff.
  const std::vector<pid_t> pids = supervisor.WorkerPids();
  ASSERT_EQ(pids.size(), 2u);
  ASSERT_GT(pids[0], 0);
  ASSERT_EQ(::kill(pids[0], SIGSEGV), 0);
  int answered = 0;
  constexpr int kRequests = 15;
  for (int i = 0; i < kRequests; ++i) {
    FetchOptions options;
    options.retry.max_attempts = 8;
    options.retry.initial_backoff_us = 10000;
    options.retry.max_backoff_us = 100000;
    options.request_id = static_cast<uint64_t>(100 + i);
    if (FetchWithRetry(port, "GET", "/healthz", "", options).answered()) {
      ++answered;
    }
  }
  EXPECT_EQ(answered, kRequests);  // Zero lost requests across the crash.

  // The crashed slot comes back under a fresh pid.
  pid_t respawned = -1;
  for (int i = 0; i < 500; ++i) {
    const std::vector<pid_t> now = supervisor.WorkerPids();
    if (now[0] > 0 && now[0] != pids[0]) {
      respawned = now[0];
      break;
    }
    Clock::System()->SleepMicros(10000);
  }
  EXPECT_GT(respawned, 0);

  supervisor.RequestDrain();
  runner.join();
  EXPECT_GE(supervisor.stats().crashed, 1u);
  EXPECT_GE(supervisor.stats().respawned, 1u);
  EXPECT_FALSE(supervisor.stats().circuit_opened);
  std::error_code ec;
  fs::remove(checkpoint, ec);
  ResetServeSignalsForTest();
}

// ---------------------------------------------------------------------------
// Run-report merge: per-worker reports fold into one fleet report with the
// single-process schema.
// ---------------------------------------------------------------------------

TEST(MergeRunReportTest, CountersAddGaugesMaxHistogramsAccumulate) {
  Observability::Default().Enable(/*deterministic=*/true);
  Observability::Default().trace().Reset();
  MetricsRegistry::Default().Reset();
  int span = Observability::Default().trace().BeginSpan("serve");

  // "Worker" state: counters, a gauge, a histogram observation.
  CountMetric("serve.connections_accepted", 5);
  SetGaugeMetric("serve.queue_depth_peak", 7);
  ObserveMetric("serve.latency_revise_micros", 1000);
  Observability::Default().trace().EndSpan(span);
  RunReportOptions options;
  options.command = "serve";
  const json::Value worker_report = BuildRunReport(options);
  ASSERT_TRUE(ValidateRunReport(worker_report).ok());

  // "Parent" state: fresh registry with its own smaller numbers.
  MetricsRegistry::Default().Reset();
  Observability::Default().trace().Reset();
  span = Observability::Default().trace().BeginSpan("serve");
  CountMetric("serve.connections_accepted", 3);
  SetGaugeMetric("serve.queue_depth_peak", 4);
  ObserveMetric("serve.latency_revise_micros", 2000);

  ASSERT_TRUE(MergeRunReportMetrics(worker_report).ok());
  // Merging twice is additive for counters and histograms, max for gauges.
  ASSERT_TRUE(MergeRunReportMetrics(worker_report).ok());

  EXPECT_EQ(
      MetricsRegistry::Default().FindCounter("serve.connections_accepted")
          ->value(),
      13u);  // 3 + 5 + 5.
  EXPECT_EQ(
      MetricsRegistry::Default().FindGauge("serve.queue_depth_peak")->value(),
      7);  // max(4, 7).

  // The merged registry still renders a schema-valid report, and the
  // histogram carried all three observations.
  Observability::Default().trace().EndSpan(span);
  const json::Value merged = BuildRunReport(options);
  ASSERT_TRUE(ValidateRunReport(merged).ok());
  int64_t total = 0;
  for (const json::Value& c : merged.At("histograms")
                                  .At("serve.latency_revise_micros")
                                  .At("counts")
                                  .AsArray()) {
    total += c.AsInt();
  }
  EXPECT_EQ(total, 3);
  EXPECT_EQ(merged.At("histograms")
                .At("serve.latency_revise_micros")
                .At("sum")
                .AsInt(),
            4000);

  // Malformed sources are typed schema errors, not crashes or partial
  // merges of nonsense.
  EXPECT_FALSE(MergeRunReportMetrics(json::Value("not an object")).ok());
  json::Value hostile = worker_report;
  hostile.AsObject()["counters"].AsObject()["serve.connections_accepted"] =
      json::Value(-1.0);
  EXPECT_FALSE(MergeRunReportMetrics(hostile).ok());
}

}  // namespace
}  // namespace serve
}  // namespace coachlm
