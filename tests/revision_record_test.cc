#include "data/revision_record.h"

#include <gtest/gtest.h>

namespace coachlm {
namespace {

TEST(RevisionRecordTest, DerivedFieldsForIdenticalPair) {
  RevisionRecord record;
  record.original.instruction = "Do X.";
  record.original.output = "Done.";
  record.revised = record.original;
  record.RecomputeDerived();
  EXPECT_EQ(record.char_edit_distance, 0u);
  EXPECT_FALSE(record.instruction_changed);
  EXPECT_FALSE(record.response_changed);
}

TEST(RevisionRecordTest, ResponseOnlyChange) {
  RevisionRecord record;
  record.original.instruction = "Do X.";
  record.original.output = "Done.";
  record.revised = record.original;
  record.revised.output = "Done properly, with detail.";
  record.RecomputeDerived();
  EXPECT_FALSE(record.instruction_changed);
  EXPECT_TRUE(record.response_changed);
  EXPECT_GT(record.char_edit_distance, 0u);
}

TEST(RevisionRecordTest, InputChangeCountsAsInstructionChange) {
  RevisionRecord record;
  record.original.instruction = "Fix this.";
  record.original.input = "teh text";
  record.original.output = "ok.";
  record.revised = record.original;
  record.revised.input = "the text";
  record.RecomputeDerived();
  EXPECT_TRUE(record.instruction_changed);
  EXPECT_EQ(record.char_edit_distance, 2u);  // "teh" -> "the" is two edits
}

TEST(RevisionRecordTest, DistanceSumsBothSides) {
  RevisionRecord record;
  record.original.instruction = "abc";
  record.original.output = "xyz";
  record.revised.instruction = "abd";  // 1 edit
  record.revised.output = "xy";        // 1 edit
  record.RecomputeDerived();
  EXPECT_EQ(record.char_edit_distance, 2u);
}

}  // namespace
}  // namespace coachlm
