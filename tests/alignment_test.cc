#include "text/alignment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/edit_distance.h"

namespace coachlm {
namespace align {
namespace {

std::vector<std::string> Words(std::initializer_list<const char*> w) {
  return std::vector<std::string>(w.begin(), w.end());
}

TEST(AlignmentTest, IdenticalSequencesAllKeep) {
  const auto src = Words({"a", "b", "c"});
  const auto script = Align(src, src);
  ASSERT_EQ(script.size(), 3u);
  for (const AlignOp& op : script) EXPECT_EQ(op.kind, OpKind::kKeep);
  EXPECT_EQ(EditCount(script), 0u);
}

TEST(AlignmentTest, SubstitutionDetected) {
  const auto script = Align(Words({"the", "cat"}), Words({"the", "dog"}));
  ASSERT_EQ(script.size(), 2u);
  EXPECT_EQ(script[1].kind, OpKind::kSubst);
  EXPECT_EQ(script[1].src, "cat");
  EXPECT_EQ(script[1].tgt, "dog");
}

TEST(AlignmentTest, InsertAndDelete) {
  const auto ins = Align(Words({"a", "c"}), Words({"a", "b", "c"}));
  EXPECT_EQ(EditCount(ins), 1u);
  const auto del = Align(Words({"a", "b", "c"}), Words({"a", "c"}));
  EXPECT_EQ(EditCount(del), 1u);
}

TEST(AlignmentTest, EmptySequences) {
  EXPECT_TRUE(Align({}, {}).empty());
  const auto all_insert = Align({}, Words({"x", "y"}));
  EXPECT_EQ(EditCount(all_insert), 2u);
  const auto all_delete = Align(Words({"x", "y"}), {});
  EXPECT_EQ(EditCount(all_delete), 2u);
}

TEST(AlignmentTest, HunksGroupConsecutiveEdits) {
  // One leading delete pair + one trailing insert pair -> two hunks.
  // (The kept middle is long enough that substitution paths cost more.)
  const auto script = Align(Words({"DEL1", "DEL2", "keep", "mid", "tail"}),
                            Words({"keep", "mid", "tail", "NEW1", "NEW2"}));
  const auto hunks = ExtractHunks(script);
  ASSERT_EQ(hunks.size(), 2u);
  EXPECT_EQ(hunks[0].src_begin, 0u);
  EXPECT_EQ(hunks[0].src_tokens.size(), 2u);
  EXPECT_TRUE(hunks[0].tgt_tokens.empty());
  EXPECT_TRUE(hunks[1].src_tokens.empty());
  EXPECT_EQ(hunks[1].tgt_tokens.size(), 2u);
}

class AlignmentPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlignmentPropertyTest, ScriptReconstructsTargetAndMatchesDistance) {
  Rng rng(GetParam());
  auto random_tokens = [&rng]() {
    std::vector<std::string> tokens;
    const size_t n = rng.NextBelow(15);
    static const std::vector<std::string> kVocab = {"a", "b", "c", "d", "e"};
    for (size_t i = 0; i < n; ++i) tokens.push_back(rng.Pick(kVocab));
    return tokens;
  };
  const auto src = random_tokens();
  const auto tgt = random_tokens();
  const auto script = Align(src, tgt);
  // Applying the script to the source reproduces the target exactly.
  EXPECT_EQ(ApplyScript(src, script), tgt);
  // The script is minimal: edit count equals the Levenshtein distance.
  EXPECT_EQ(EditCount(script), editdist::TokenDistance(src, tgt));
  // Hunks partition the edits.
  size_t hunk_ops = 0;
  for (const Hunk& h : ExtractHunks(script)) hunk_ops += h.ops.size();
  EXPECT_EQ(hunk_ops, EditCount(script));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AlignmentPropertyTest,
                         ::testing::Range<uint64_t>(1, 60));

}  // namespace
}  // namespace align
}  // namespace coachlm
