#include "tuning/evaluation.h"

#include <gtest/gtest.h>

#include "tuning/model_zoo.h"

namespace coachlm {
namespace tuning {
namespace {

testsets::TestSet SmallSet() {
  testsets::TestSetSpec spec;
  spec.name = "small";
  spec.size = 60;
  spec.categories = {Category::kGeneralQa, Category::kHowToGuide,
                     Category::kCoding};
  spec.reference_explanations = 2;
  spec.reference_closing_rate = 0.4;
  return testsets::BuildTestSet(spec);
}

TEST(EvaluationTest, CountsSumToTestSetSize) {
  const TunedModel model(Llama7BBase("m"), UniformProfile(0.85, 0.9));
  const judge::PairwiseJudge judge(judge::PandaLmProfile());
  const EvalResult result = EvaluateModel(model, SmallSet(), judge);
  EXPECT_EQ(result.counts.Total(), 60u);
}

TEST(EvaluationTest, DeterministicForSeed) {
  const TunedModel model(Llama7BBase("m"), UniformProfile(0.85, 0.9));
  const judge::PairwiseJudge judge(judge::PandaLmProfile());
  const EvalResult a = EvaluateModel(model, SmallSet(), judge, 77);
  const EvalResult b = EvaluateModel(model, SmallSet(), judge, 77);
  EXPECT_EQ(a.counts.wins, b.counts.wins);
  EXPECT_EQ(a.counts.ties, b.counts.ties);
}

TEST(EvaluationTest, StrongerModelWinsMore) {
  const judge::PairwiseJudge judge(judge::PandaLmProfile());
  const TunedModel weak(Llama7BBase("w"), UniformProfile(0.72, 0.8));
  const TunedModel strong(Llama13BBase("s"), UniformProfile(0.93, 0.97));
  const testsets::TestSet set = SmallSet();
  const double weak_wr = EvaluateModel(weak, set, judge).rates.wr1;
  const double strong_wr = EvaluateModel(strong, set, judge).rates.wr1;
  EXPECT_GT(strong_wr, weak_wr + 0.1);
}

TEST(EvaluationTest, PerCategoryPartitionsTotals) {
  const TunedModel model(Llama7BBase("m"), UniformProfile(0.85, 0.9));
  const judge::PairwiseJudge judge(judge::PandaLmProfile());
  const testsets::TestSet set = SmallSet();
  const EvalResult total = EvaluateModel(model, set, judge);
  const auto per_category = EvaluateModelPerCategory(model, set, judge);
  ASSERT_EQ(per_category.size(), 3u);
  size_t sum = 0, wins = 0;
  for (const auto& [category, result] : per_category) {
    sum += result.counts.Total();
    wins += result.counts.wins;
  }
  EXPECT_EQ(sum, total.counts.Total());
  EXPECT_EQ(wins, total.counts.wins);
}

TEST(EvaluationTest, CoverageHoleShowsInPerCategoryRates) {
  // A model tuned without code data regresses on coding items — the
  // AlpaGasus effect made visible per category.
  AlignmentProfile no_code = UniformProfile(0.88, 0.95);
  no_code.per_category.erase(Category::kCoding);
  no_code.unseen_generalization = 0.4;
  const TunedModel model(Llama7BBase("m"), no_code);
  const judge::PairwiseJudge judge(judge::PandaLmProfile());
  const auto per_category =
      EvaluateModelPerCategory(model, SmallSet(), judge);
  EXPECT_LT(per_category.at(Category::kCoding).rates.wr1,
            per_category.at(Category::kGeneralQa).rates.wr1);
}

}  // namespace
}  // namespace tuning
}  // namespace coachlm
