// Reproduces Table IV (the distribution of expert revision types on the
// INSTRUCTION and RESPONSE sides), plus the Table I expert grouping and the
// Section II-E effort accounting (the paper's 129 person-days).

#include "bench_common.h"
#include "common/table_writer.h"
#include "expert/experts.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Table IV (+ Table I, person-days)",
                     "expert revision-type distribution");
  bench::World world = bench::BuildWorld(/*with_coach=*/false);
  const expert::RevisionStudyResult& study = world.study;

  // --- Table I: expert grouping ---
  TableWriter groups({"Group", "Task", "Experts", "Avg experience"});
  groups.AddRow({"A", "Revise Instruction Pairs",
                 std::to_string(
                     expert::GroupMembers(expert::ExpertGroup::kReviseA).size()),
                 TableWriter::Num(expert::MeanExperience(expert::GroupMembers(
                                      expert::ExpertGroup::kReviseA)),
                                  2)});
  groups.AddRow({"B", "Create Test Set",
                 std::to_string(expert::GroupMembers(
                                    expert::ExpertGroup::kTestSetB)
                                    .size()),
                 TableWriter::Num(expert::MeanExperience(expert::GroupMembers(
                                      expert::ExpertGroup::kTestSetB)),
                                  2)});
  groups.AddRow({"C", "Evaluate CoachLM",
                 std::to_string(expert::GroupMembers(
                                    expert::ExpertGroup::kEvaluateC)
                                    .size()),
                 TableWriter::Num(expert::MeanExperience(expert::GroupMembers(
                                      expert::ExpertGroup::kEvaluateC)),
                                  2)});
  std::printf("%s\n", groups.ToAscii().c_str());

  // --- Table IV: instruction side ---
  const size_t instr_total = [&] {
    size_t total = 0;
    for (const auto& [type, count] : study.instruction_revision_counts) {
      total += count;
    }
    return total;
  }();
  TableWriter instr({"Instruction revision", "Paper", "Measured"});
  const std::pair<expert::InstructionRevisionType, double> instr_rows[] = {
      {expert::InstructionRevisionType::kAdjustReadability, 0.681},
      {expert::InstructionRevisionType::kRewriteFeasibility, 0.249},
      {expert::InstructionRevisionType::kDiversifyContext, 0.070},
  };
  for (const auto& [type, paper] : instr_rows) {
    auto it = study.instruction_revision_counts.find(type);
    const size_t count =
        it == study.instruction_revision_counts.end() ? 0 : it->second;
    instr.AddRow({expert::InstructionRevisionTypeName(type),
                  TableWriter::Pct(paper),
                  TableWriter::Pct(instr_total
                                       ? static_cast<double>(count) / instr_total
                                       : 0.0)});
  }
  std::printf("%s\n", instr.ToAscii().c_str());

  // --- Table IV: response side ---
  const size_t resp_total = [&] {
    size_t total = 0;
    for (const auto& [type, count] : study.response_revision_counts) {
      total += count;
    }
    return total;
  }();
  TableWriter resp({"Response revision", "Paper", "Measured"});
  const std::pair<expert::ResponseRevisionType, double> resp_rows[] = {
      {expert::ResponseRevisionType::kDiversifyExpand, 0.437},
      {expert::ResponseRevisionType::kRewriteContent, 0.245},
      {expert::ResponseRevisionType::kAdjustLayoutTone, 0.233},
      {expert::ResponseRevisionType::kCorrectFacts, 0.067},
      {expert::ResponseRevisionType::kOther, 0.019},
  };
  for (const auto& [type, paper] : resp_rows) {
    auto it = study.response_revision_counts.find(type);
    const size_t count =
        it == study.response_revision_counts.end() ? 0 : it->second;
    resp.AddRow({expert::ResponseRevisionTypeName(type),
                 TableWriter::Pct(paper),
                 TableWriter::Pct(resp_total
                                      ? static_cast<double>(count) / resp_total
                                      : 0.0)});
  }
  std::printf("%s\n", resp.ToAscii().c_str());

  std::printf("revised pairs: %zu (instruction side: %zu; paper: 2301 / "
              "1079 at 6k scale)\n",
              study.revised_pairs, study.instruction_revised_pairs);
  std::printf("effort: %.0f person-days (paper: 129 at 6k scale)\n",
              study.person_days);
  return 0;
}
