// Overhead guard for resource governance on the revise stage: an attached
// cancel token (a real wall-clock deadline far in the future, so every
// poll says "keep going") plus an armed stall watchdog must cost < 1%
// over the ungoverned path. Both paths revise the same corpus; min-of-N
// timing suppresses scheduler noise and the outputs are hashed so the run
// doubles as a byte-identity check — governance that never trips must not
// change a single byte.

#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.h"
#include "common/cancel.h"
#include "common/clock.h"
#include "common/execution.h"
#include "common/runtime.h"
#include "common/table_writer.h"
#include "lm/pair_text.h"

using namespace coachlm;

namespace {

uint64_t HashDataset(const InstructionDataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  for (const InstructionPair& pair : dataset) {
    const std::string text = lm::SerializePair(pair);
    for (unsigned char c : text) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

int main() {
  bench::PrintHeader("Guard", "governed (deadline + watchdog) overhead on "
                              "revise stage");
  const bench::World world = bench::BuildWorld(true);
  const coach::CoachLm& model = *world.coach.model;
  const InstructionDataset& dataset = world.corpus.dataset;
  const ExecutionContext exec;

  // Governance under no pressure: a one-hour deadline no rep gets near
  // and a one-hour stall budget, polled on the production cadence. Every
  // item pays the real polling cost — the deadline check against the
  // system clock and the watchdog tick — without any of them firing.
  Clock* clock = Clock::System();
  constexpr int64_t kHourMicros = int64_t{3600} * 1000 * 1000;
  CancelToken token(clock, clock->NowMicros() + kHourMicros);
  StallWatchdog watchdog(clock, &token, "revise", kHourMicros);
  watchdog.Start(/*poll_interval_micros=*/100000);
  PipelineRuntime governed;
  governed.set_cancel_token(&token);
  governed.set_watchdog(&watchdog);

  constexpr int kReps = 7;
  double ungoverned = 1e300, governed_time = 1e300;
  uint64_t ungoverned_hash = 0, governed_hash = 0;
  // Interleave the reps so slow drift (thermal, cache) hits both equally;
  // one untimed warm-up rep primes allocators and page cache.
  model.ReviseDataset(dataset, {}, nullptr, exec);
  for (int rep = 0; rep < kReps; ++rep) {
    ungoverned = std::min(ungoverned, bench::Seconds([&] {
      ungoverned_hash = HashDataset(model.ReviseDataset(
          dataset, {}, nullptr, exec, /*runtime=*/nullptr));
    }));
    governed_time = std::min(governed_time, bench::Seconds([&] {
      governed_hash = HashDataset(
          model.ReviseDataset(dataset, {}, nullptr, exec, &governed));
    }));
  }
  watchdog.Stop();

  const double overhead_pct = (governed_time / ungoverned - 1.0) * 100.0;
  TableWriter table({"Path", "min seconds", "pairs/s"});
  const auto rate = [&](double s) {
    return std::to_string(
        static_cast<long long>(static_cast<double>(dataset.size()) / s));
  };
  table.AddRow({"ungoverned", std::to_string(ungoverned), rate(ungoverned)});
  table.AddRow({"governed (deadline + watchdog)",
                std::to_string(governed_time), rate(governed_time)});
  std::printf("%s", table.ToAscii().c_str());
  std::printf("governance overhead: %+.3f%% (budget < 1%%, min of %d reps)\n",
              overhead_pct, kReps);
  bench::Record("ungoverned_seconds", ungoverned, "s");
  bench::Record("governed_seconds", governed_time, "s");
  bench::Record("governance_overhead", overhead_pct, "%");

  if (token.cancelled()) {
    std::printf("FAIL: the idle-pressure token tripped: %s\n",
                token.status().ToString().c_str());
    return 1;
  }
  if (ungoverned_hash != governed_hash) {
    std::printf("FAIL: governed output diverged from ungoverned "
                "(%016llx vs %016llx)\n",
                static_cast<unsigned long long>(governed_hash),
                static_cast<unsigned long long>(ungoverned_hash));
    return 1;
  }
  if (overhead_pct >= 1.0) {
    std::printf("FAIL: idle governance exceeds the 1%% budget\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
