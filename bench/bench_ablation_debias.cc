// Ablation of the swap-order debiasing protocol (Section III-A1): raw
// GPT-4-style judging is position-biased — equal candidates "win" far more
// often in the first display slot — while the two-rating reconcile protocol
// removes the asymmetry at the cost of extra ties.

#include "bench_common.h"
#include "common/table_writer.h"
#include "judge/pairwise_judge.h"
#include "testsets/testset.h"

using namespace coachlm;

namespace {

struct Split {
  judge::VerdictCounts counts;
};

}  // namespace

int main() {
  bench::PrintHeader("Ablation", "judge swap-order debiasing on/off");
  const testsets::TestSet set = testsets::CoachLm150();
  const judge::PairwiseJudge gpt4(judge::Gpt4Profile());
  const judge::PairwiseJudge panda(judge::PandaLmProfile());

  // Compare every reference against *itself*: any deviation from symmetry
  // is pure judge bias.
  TableWriter table({"Judge", "Protocol", "first wins", "ties",
                     "first loses"});
  struct Setup {
    const judge::PairwiseJudge* judge;
    const char* name;
    bool debiased;
  };
  const Setup setups[] = {
      {&gpt4, "GPT-4-style", false},
      {&gpt4, "GPT-4-style", true},
      {&panda, "PandaLM-style", false},
      {&panda, "PandaLM-style", true},
  };
  for (const Setup& setup : setups) {
    judge::VerdictCounts counts;
    for (const InstructionPair& item : set.items) {
      for (int round = 0; round < 10; ++round) {
        Rng rng(item.id * 100 + static_cast<uint64_t>(round));
        const judge::Verdict verdict =
            setup.debiased
                ? setup.judge->CompareDebiased(item, item.output,
                                               item.output, &rng)
                : setup.judge->Compare(item, item.output, item.output, &rng);
        counts.Add(verdict);
      }
    }
    table.AddRow({setup.name, setup.debiased ? "debiased (swap)" : "raw",
                  std::to_string(counts.wins), std::to_string(counts.ties),
                  std::to_string(counts.losses)});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf("identical candidates should split symmetrically; the raw "
              "GPT-4-style judge favors the first slot, the swap protocol "
              "restores symmetry (the bias reported in [24]).\n");
  return 0;
}
