// Reproduces Fig. 4: the histogram of ChatGPT-style 0-5 accuracy ratings
// over the whole dataset before and after CoachLM revision, with the mean
// and the share of pairs rated above 4.5 (paper: 3.95 -> 4.31 and 17.7% ->
// 78.9%).

#include "bench_common.h"
#include "common/stats.h"
#include "quality/accuracy_rater.h"

using namespace coachlm;

namespace {

Histogram RatingHistogram(const InstructionDataset& dataset) {
  Histogram histogram(0.0, 5.0, 10);
  quality::AccuracyRater rater;
  for (const InstructionPair& pair : dataset) {
    histogram.Add(rater.Rate(pair));
  }
  return histogram;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 4",
                     "ChatGPT-style rating histogram before/after revision");
  bench::World world = bench::BuildWorld();

  const Histogram before = RatingHistogram(world.corpus.dataset);
  const Histogram after = RatingHistogram(world.coach.revised_dataset);

  std::printf("--- Original dataset ---\n%s", before.ToAscii().c_str());
  std::printf("mean rating: %.2f (paper: 3.95)\n", before.Mean());
  std::printf("share above 4.5: %.1f%% (paper: 17.7%%)\n\n",
              before.FractionAtLeast(4.5 + 1e-9) * 100);

  std::printf("--- CoachLM-revised dataset ---\n%s", after.ToAscii().c_str());
  std::printf("mean rating: %.2f (paper: 4.31)\n", after.Mean());
  std::printf("share above 4.5: %.1f%% (paper: 78.9%%)\n",
              after.FractionAtLeast(4.5 + 1e-9) * 100);
  return 0;
}
