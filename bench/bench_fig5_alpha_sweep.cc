// Reproduces Fig. 5: (a) win rate of Alpaca-CoachLM on CoachLM150 as the
// human input ratio alpha varies (paper: peak at 0.3, <=~10% degradation at
// alpha 1, rated by both PandaLM and GPT-4 with debiasing), and (b) win
// rate of Alpaca-human as more human-revised samples replace originals,
// with the linear fit (paper: 3.07%/k, R^2 = 0.9799) and the extrapolated
// crossover with Alpaca-CoachLM.

#include <algorithm>

#include "bench_common.h"
#include "coach/alpha_selection.h"
#include "common/linear_fit.h"
#include "common/table_writer.h"
#include "testsets/testset.h"
#include "tuning/evaluation.h"
#include "tuning/model_zoo.h"

using namespace coachlm;

namespace {

double AverageWinRate(const tuning::EvalResult& eval) {
  // Fig. 5 plots the average of WR1, WR2 and QS.
  return (eval.rates.wr1 + eval.rates.wr2 + eval.rates.qs) / 3.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 5", "impact of the human input ratio alpha");
  bench::World world = bench::BuildWorld(/*with_coach=*/false);
  const testsets::TestSet set = testsets::CoachLm150();
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  const judge::PairwiseJudge gpt4(judge::Gpt4Profile());
  tuning::InstructionTuner tuner;

  // --- (a) Alpaca-CoachLM vs alpha ---
  std::printf("\n(a) Alpaca-CoachLM win rate vs alpha (avg of WR1/WR2/QS)\n");
  TableWriter sweep({"alpha", "PandaLM", "GPT-4 (debiased)"});
  double coachlm_at_03 = 0.0;
  double best_alpha = 0.0, best_rate = -1.0;
  for (double alpha : {0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.85, 1.0}) {
    coach::CoachConfig config;
    config.alpha = alpha;
    const auto result = coach::RunCoachPipeline(
        world.corpus.dataset, world.study.revisions, config);
    const tuning::TunedModel model = tuner.Tune(
        tuning::Llama7BBase("Alpaca-CoachLM"), result.revised_dataset);
    const double panda_rate =
        AverageWinRate(tuning::EvaluateModel(model, set, panda));
    const double gpt4_rate =
        AverageWinRate(tuning::EvaluateModel(model, set, gpt4));
    sweep.AddRow({TableWriter::Num(alpha, 2), TableWriter::Pct(panda_rate),
                  TableWriter::Pct(gpt4_rate)});
    if (alpha == 0.3) coachlm_at_03 = panda_rate;
    if (panda_rate > best_rate) {
      best_rate = panda_rate;
      best_alpha = alpha;
    }
  }
  std::printf("%s", sweep.ToAscii().c_str());
  std::printf("best alpha (PandaLM): %.2f (paper: 0.3)\n", best_alpha);

  // --- (b) Alpaca-human vs number of human-revised samples ---
  std::printf("\n(b) Alpaca-human win rate vs human-revised sample count\n");
  TableWriter human_rows({"human samples", "PandaLM avg win rate"});
  std::vector<double> xs, ys;
  const size_t total = world.study.revisions.size();
  for (double fraction : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const size_t use = static_cast<size_t>(fraction * total);
    InstructionDataset merged = world.corpus.dataset;
    std::unordered_map<uint64_t, const InstructionPair*> revised_by_id;
    for (size_t i = 0; i < use; ++i) {
      revised_by_id[world.study.revisions[i].original.id] =
          &world.study.revisions[i].revised;
    }
    for (InstructionPair& pair : merged.pairs()) {
      auto it = revised_by_id.find(pair.id);
      if (it != revised_by_id.end()) pair = *it->second;
    }
    const tuning::TunedModel model =
        tuner.Tune(tuning::Llama7BBase("Alpaca-human"), merged);
    const double rate =
        AverageWinRate(tuning::EvaluateModel(model, set, panda));
    human_rows.AddRow({std::to_string(use), TableWriter::Pct(rate)});
    xs.push_back(static_cast<double>(use));
    ys.push_back(rate * 100.0);
  }
  std::printf("%s", human_rows.ToAscii().c_str());

  const auto fit = FitLine(xs, ys);
  if (fit.ok()) {
    std::printf("linear fit: %.2f%%/k human samples, R^2 = %.4f "
                "(paper: 3.07%%/k, R^2 = 0.9799)\n",
                fit->slope * 1000.0, fit->r_squared);
    const auto crossover = fit->SolveForX(coachlm_at_03 * 100.0);
    if (crossover.ok() && *crossover > 0) {
      std::printf("estimated crossover with Alpaca-CoachLM(alpha=0.3): "
                  "%.0f human-revised samples (paper: ~7.3k); CoachLM used "
                  "only %zu (%.1f%% of that)\n",
                  *crossover,
                  coach::AlphaCount(total, 0.3),
                  100.0 * coach::AlphaCount(total, 0.3) /
                      std::max(1.0, *crossover));
    }
  }
  return 0;
}
