// Ablation of the future-work expansion verifier (Section VI proposes RL
// signals to mitigate hallucinated expansions; Section IV-B reports the
// failure case). The same coach revises the corpus with the verifier off
// (the published system) and on, for each backbone — weaker backbones
// generate more slips, so they gain the most from self-checking.

#include "bench_common.h"
#include "common/table_writer.h"
#include "quality/accuracy_rater.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Ablation (future work)",
                     "RL-style expansion verification on/off");
  bench::World world = bench::BuildWorld(/*with_coach=*/false);
  quality::AccuracyRater rater;

  TableWriter table({"Backbone", "Verifier", "Mean rating", "> 4.5"});
  for (const lm::BackboneProfile& backbone :
       {lm::Llama7B(), lm::ChatGlm26B()}) {
    for (bool verify : {false, true}) {
      coach::CoachConfig config;
      config.alpha = 0.3;
      config.backbone = backbone;
      config.verify_expansions = verify;
      const auto result = coach::RunCoachPipeline(
          world.corpus.dataset, world.study.revisions, config);
      const auto rating = rater.RateDataset(result.revised_dataset);
      table.AddRow({backbone.name, verify ? "on" : "off",
                    TableWriter::Num(rating.mean, 2),
                    TableWriter::Pct(rating.fraction_above_45)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf("the verifier repairs disfluent expansions and rejects "
              "ungrounded ones; the weaker backbone (higher fluency noise) "
              "gains more.\n");
  return 0;
}
