// Reproduces Table VII: statistics of the ALPACA52K-like dataset before and
// after CoachLM revision — average lengths and word-level edit distances,
// plus the count of instruction-side changes (~8k of 52k in the paper).

#include "bench_common.h"
#include "common/table_writer.h"
#include "common/execution.h"
#include "text/edit_distance.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Table VII",
                     "CoachLM-revised dataset statistics (lengths, edit "
                     "distances)");
  bench::World world = bench::BuildWorld();
  const InstructionDataset& before = world.corpus.dataset;
  const InstructionDataset& after = world.coach.revised_dataset;

  const DatasetStats stats_before = before.ComputeStats();
  const DatasetStats stats_after = after.ComputeStats();

  std::vector<size_t> instr_ed(before.size());
  std::vector<size_t> resp_ed(before.size());
  ExecutionContext::Default().ParallelFor(before.size(), [&](size_t i) {
    instr_ed[i] = editdist::WordDistance(before[i].FullInstruction(),
                                         after[i].FullInstruction());
    resp_ed[i] = editdist::WordDistance(before[i].output, after[i].output);
  });
  double instr_ed_sum = 0, resp_ed_sum = 0;
  size_t instr_changed = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    instr_ed_sum += static_cast<double>(instr_ed[i]);
    resp_ed_sum += static_cast<double>(resp_ed[i]);
    if (instr_ed[i] > 0) ++instr_changed;
  }
  const double n = static_cast<double>(before.size());

  TableWriter table({"Dataset", "Instr. avg words", "Instr. word ED",
                     "Resp. avg words", "Resp. word ED"});
  table.AddRow({"Original (paper)", "17.7", "-", "43.9", "-"});
  table.AddRow({"Original (measured)",
                TableWriter::Num(stats_before.avg_instruction_words), "-",
                TableWriter::Num(stats_before.avg_response_words), "-"});
  table.AddSeparator();
  table.AddRow({"CoachLM-revised (paper)", "16.8", "3.4", "143.1", "128.7"});
  table.AddRow({"CoachLM-revised (measured)",
                TableWriter::Num(stats_after.avg_instruction_words),
                TableWriter::Num(instr_ed_sum / n),
                TableWriter::Num(stats_after.avg_response_words),
                TableWriter::Num(resp_ed_sum / n)});
  std::printf("%s", table.ToAscii().c_str());
  std::printf("instructions changed: %zu of %zu = %s (paper: ~8k of 52k = "
              "15.4%%)\n",
              instr_changed, before.size(),
              TableWriter::Pct(static_cast<double>(instr_changed) / n).c_str());
  std::printf("post-processing: invalid replaced %s, leakage-skipped %s "
              "(paper: ~1.3%% each)\n",
              TableWriter::Pct(static_cast<double>(
                                   world.coach.stats.invalid_replaced) / n)
                  .c_str(),
              TableWriter::Pct(static_cast<double>(
                                   world.coach.stats.leakage_skipped) / n)
                  .c_str());
  return 0;
}
