// Reproduces Table III: the distribution of instruction pairs excluded by
// the experts' preliminary filter, with the paper's reported ratios
// alongside the measured ones.

#include "bench_common.h"
#include "common/table_writer.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Table III",
                     "distribution of excluded instruction pairs");
  bench::World world = bench::BuildWorld(/*with_coach=*/false);

  const expert::FilterStats& stats = world.study.filter_stats;
  struct Row {
    expert::ExclusionReason reason;
    double paper_ratio;
  };
  const Row rows[] = {
      {expert::ExclusionReason::kInvalidInput, 0.417},
      {expert::ExclusionReason::kBeyondExpertise, 0.277},
      {expert::ExclusionReason::kMassiveWorkload, 0.082},
      {expert::ExclusionReason::kMultiModal, 0.065},
      {expert::ExclusionReason::kSafety, 0.159},
  };

  TableWriter table({"Reason", "Paper ratio", "Measured ratio", "Count"});
  for (const Row& row : rows) {
    auto it = stats.excluded.find(row.reason);
    const size_t count = it == stats.excluded.end() ? 0 : it->second;
    table.AddRow({expert::ExclusionReasonName(row.reason),
                  TableWriter::Pct(row.paper_ratio),
                  TableWriter::Pct(stats.Ratio(row.reason)),
                  std::to_string(count)});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "excluded %zu of %zu sampled pairs (paper: 1088 of 6000 = 18.1%%); "
      "%zu retained for revision diversity\n",
      stats.TotalExcluded(), stats.TotalExcluded() + stats.passed,
      stats.retained_for_diversity);
  return 0;
}
