// Reproduces Table XI: the backbone ablation. CoachLM is trained from
// LLaMA / ChatGLM / ChatGLM2 with alpha fixed at 1, and the subsequently
// tuned Alpaca-CoachLM is judged on CoachLM150 (paper: every backbone beats
// plain Alpaca, and stronger backbones do better).

#include "bench_common.h"
#include "common/table_writer.h"
#include "testsets/testset.h"
#include "tuning/evaluation.h"
#include "tuning/model_zoo.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Table XI", "CoachLM backbone ablation (alpha = 1)");
  bench::World world = bench::BuildWorld(/*with_coach=*/false);
  const testsets::TestSet set = testsets::CoachLm150();
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  tuning::InstructionTuner tuner;

  TableWriter table({"Model", "Size", "WR1", "WR2", "QS"});
  {
    const tuning::TunedModel alpaca =
        tuner.Tune(tuning::Llama7BBase("Alpaca"), world.corpus.dataset);
    const auto eval = tuning::EvaluateModel(alpaca, set, panda);
    table.AddRow({"Alpaca", "-", TableWriter::Pct(eval.rates.wr1),
                  TableWriter::Pct(eval.rates.wr2),
                  TableWriter::Pct(eval.rates.qs)});
    table.AddSeparator();
  }
  for (const lm::BackboneProfile& backbone :
       {lm::Llama7B(), lm::ChatGlm6B(), lm::ChatGlm26B()}) {
    coach::CoachConfig config;
    config.alpha = 1.0;
    config.backbone = backbone;
    const auto result = coach::RunCoachPipeline(
        world.corpus.dataset, world.study.revisions, config);
    const tuning::TunedModel model = tuner.Tune(
        tuning::Llama7BBase("Alpaca-CoachLM"), result.revised_dataset);
    const auto eval = tuning::EvaluateModel(model, set, panda);
    const std::string size =
        backbone.name.find("7b") != std::string::npos ? "7B" : "6B";
    table.AddRow({"Alpaca-CoachLM (" + backbone.name + ")", size,
                  TableWriter::Pct(eval.rates.wr1),
                  TableWriter::Pct(eval.rates.wr2),
                  TableWriter::Pct(eval.rates.qs)});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf("paper (WR1): Alpaca 48.0%%; backbones LLaMA 49.3%%, ChatGLM "
              "54.0%%, ChatGLM2 56.7%%\n");
  return 0;
}
