// Micro benchmarks of the text substrate: tokenization, edit distance,
// alignment, and similarity — the hot loops of alpha-selection (Section
// II-F2) and rule extraction.

#include <benchmark/benchmark.h>

#include "synth/topic_bank.h"
#include "text/alignment.h"
#include "text/edit_distance.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace coachlm {
namespace {

std::string LongText() {
  std::string text;
  for (const synth::Topic& topic : synth::Topics()) {
    text += topic.fact + " " + topic.details[0] + " ";
    if (text.size() > 2000) break;
  }
  return text;
}

void BM_WordTokenize(benchmark::State& state) {
  const std::string text = LongText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer::WordTokenize(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_WordTokenize);

void BM_SplitSentences(benchmark::State& state) {
  const std::string text = LongText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer::SplitSentences(text));
  }
}
BENCHMARK(BM_SplitSentences);

void BM_CharEditDistance(benchmark::State& state) {
  const std::string a = LongText().substr(0, state.range(0));
  std::string b = a;
  b[b.size() / 2] = '#';
  b.insert(b.size() / 3, "inserted words here");
  for (auto _ : state) {
    benchmark::DoNotOptimize(editdist::CharDistance(a, b));
  }
}
BENCHMARK(BM_CharEditDistance)->Arg(128)->Arg(512)->Arg(2000);

void BM_CharEditDistanceBounded(benchmark::State& state) {
  const std::string a = LongText().substr(0, 2000);
  std::string b = a;
  b[100] = '#';
  for (auto _ : state) {
    benchmark::DoNotOptimize(editdist::CharDistanceBounded(a, b, 4));
  }
}
BENCHMARK(BM_CharEditDistanceBounded);

void BM_WordAlignment(benchmark::State& state) {
  const auto src = tokenizer::WordTokenize(LongText().substr(0, 600));
  auto tgt = src;
  tgt.insert(tgt.begin() + static_cast<long>(tgt.size()) / 2, "extra");
  tgt[3] = "changed";
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::Align(src, tgt));
  }
}
BENCHMARK(BM_WordAlignment);

void BM_ContentOverlap(benchmark::State& state) {
  const std::string a = LongText().substr(0, 500);
  const std::string b = LongText().substr(200, 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::ContentOverlap(a, b));
  }
}
BENCHMARK(BM_ContentOverlap);

}  // namespace
}  // namespace coachlm

BENCHMARK_MAIN();
