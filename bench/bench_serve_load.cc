// Load bench for the `coachlm serve` daemon: client-observed latency
// percentiles (p50/p99), throughput, shed-rate under a deliberate
// overload, and a hot model reload in the middle of live traffic with a
// hard zero-5xx requirement. By default the bench boots an in-process
// server on an ephemeral port; set COACHLM_SERVE_PORT to aim the load at
// an externally booted daemon instead (the CI serve job does both).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/table_writer.h"
#include "serve/client.h"
#include "serve/model_host.h"
#include "serve/serve_config.h"
#include "serve/server.h"

using namespace coachlm;

namespace {

/// Client-side tally across one load phase.
struct LoadResult {
  std::vector<int64_t> latencies_micros;
  uint64_t ok = 0;
  uint64_t shed = 0;        // 429 at admission
  uint64_t client_4xx = 0;  // other 4xx
  uint64_t server_5xx = 0;  // any 5xx: must be zero in every phase
  uint64_t transport = 0;   // connect/recv failures

  uint64_t total() const {
    return ok + shed + client_4xx + server_5xx + transport;
  }
};

int64_t Percentile(std::vector<int64_t>* sorted, double p) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

/// Runs \p threads client threads, each posting \p requests_per_thread
/// copies of \p body to /v1/revise on \p port.
LoadResult RunLoad(int port, const std::string& body, int threads,
                   int requests_per_thread) {
  std::vector<LoadResult> shards(static_cast<size_t>(threads));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  Clock* clock = Clock::System();
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      LoadResult& shard = shards[static_cast<size_t>(t)];
      for (int i = 0; i < requests_per_thread; ++i) {
        const int64_t start = clock->NowMicros();
        Result<serve::ParsedHttpResponse> response =
            serve::HttpFetch(port, "POST", "/v1/revise", body, 30000);
        const int64_t micros = clock->NowMicros() - start;
        if (!response.ok()) {
          ++shard.transport;
          continue;
        }
        shard.latencies_micros.push_back(micros);
        if (response->status < 400) {
          ++shard.ok;
        } else if (response->status == 429) {
          ++shard.shed;
        } else if (response->status >= 500) {
          ++shard.server_5xx;
        } else {
          ++shard.client_4xx;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  LoadResult merged;
  for (LoadResult& shard : shards) {
    merged.latencies_micros.insert(merged.latencies_micros.end(),
                                   shard.latencies_micros.begin(),
                                   shard.latencies_micros.end());
    merged.ok += shard.ok;
    merged.shed += shard.shed;
    merged.client_4xx += shard.client_4xx;
    merged.server_5xx += shard.server_5xx;
    merged.transport += shard.transport;
  }
  return merged;
}

}  // namespace

int main() {
  bench::PrintHeader("Serve",
                     "revision service load: p50/p99, shedding, hot reload");
  const int external_port = static_cast<int>(
      std::strtol(GetEnvOr("COACHLM_SERVE_PORT", "0").c_str(), nullptr, 10));

  // A small deterministic request body (the same three pairs every time).
  const bench::World world = bench::BuildWorld(true);
  std::string body;
  for (size_t i = 0; i < 3 && i < world.corpus.dataset.size(); ++i) {
    body += world.corpus.dataset[i].ToJson().Dump();
    body += '\n';
  }

  // In-process server unless COACHLM_SERVE_PORT points elsewhere.
  namespace fs = std::filesystem;
  const std::string checkpoint =
      (fs::temp_directory_path() / "bench_serve_coach.json").string();
  std::unique_ptr<serve::ModelHost> host;
  std::unique_ptr<serve::RevisionServer> server;
  int port = external_port;
  if (port <= 0) {
    if (!world.coach.model->SaveCheckpoint(checkpoint).ok()) {
      std::fprintf(stderr, "[bench] cannot write %s\n", checkpoint.c_str());
      return 1;
    }
    serve::ServeConfig config;
    config.port = 0;
    config.checkpoint = checkpoint;
    config.coach = world.coach.model->config();
    config.workers = 4;
    config.queue_depth = 64;
    host = std::make_unique<serve::ModelHost>(checkpoint, config.coach);
    if (!host->Load().ok()) return 1;
    server = std::make_unique<serve::RevisionServer>(config, host.get());
    const Status started = server->StartServing();
    if (!started.ok()) {
      std::fprintf(stderr, "[bench] %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
  }
  std::fprintf(stderr, "[bench] driving 127.0.0.1:%d (%s)\n", port,
               external_port > 0 ? "external daemon" : "in-process");

  // Phase 1: steady load with a hot reload in the middle. The reload runs
  // on the main thread while client threads hammer /v1/revise; any 5xx
  // (from traffic or the reload) fails the bench.
  const int kThreads = 4;
  const int kRequests = static_cast<int>(Scaled(150, 20));
  std::atomic<bool> reload_failed{false};
  std::thread reloader([&] {
    Clock::System()->SleepMicros(50000);  // Land mid-burst.
    Result<serve::ParsedHttpResponse> reload =
        serve::HttpFetch(port, "POST", "/admin/reload", "", 30000);
    if (!reload.ok() || reload->status != 200) reload_failed.store(true);
  });
  const double elapsed = bench::Seconds([&] {
    LoadResult steady = RunLoad(port, body, kThreads, kRequests);
    reloader.join();

    const int64_t p50 = Percentile(&steady.latencies_micros, 0.50);
    const int64_t p99 = Percentile(&steady.latencies_micros, 0.99);
    const double requests = static_cast<double>(steady.total());
    TableWriter table({"Metric", "Value"});
    table.AddRow({"requests", std::to_string(steady.total())});
    table.AddRow({"ok", std::to_string(steady.ok)});
    table.AddRow({"shed (429)", std::to_string(steady.shed)});
    table.AddRow({"5xx", std::to_string(steady.server_5xx)});
    table.AddRow({"transport errors", std::to_string(steady.transport)});
    table.AddRow({"p50 micros", std::to_string(p50)});
    table.AddRow({"p99 micros", std::to_string(p99)});
    std::printf("%s", table.ToAscii().c_str());
    bench::Record("p50_micros", static_cast<double>(p50), "us");
    bench::Record("p99_micros", static_cast<double>(p99), "us");
    bench::Record("requests", requests, "count");
    bench::Record("errors_5xx", static_cast<double>(steady.server_5xx),
                  "count");
    if (steady.server_5xx != 0 || steady.transport != 0) {
      std::fprintf(stderr,
                   "[bench] FAIL: %llu 5xx / %llu transport errors under "
                   "steady load\n",
                   static_cast<unsigned long long>(steady.server_5xx),
                   static_cast<unsigned long long>(steady.transport));
      std::exit(1);
    }
  });
  if (reload_failed.load()) {
    std::fprintf(stderr, "[bench] FAIL: hot reload under traffic failed\n");
    return 1;
  }
  const double rps =
      static_cast<double>(kThreads) * kRequests / std::max(elapsed, 1e-9);
  std::printf("steady load: %.0f req/s over %.2fs, hot reload ok\n", rps,
              elapsed);
  bench::Record("requests_per_second", rps, "1/s");

  // Phase 2 (in-process only): deliberate overload against a tiny
  // admission queue to measure the shed-rate the service holds under
  // pressure instead of collapsing.
  double shed_rate = 0.0;
  if (server != nullptr) {
    server->RequestDrain();
    server->AwaitDrain();
    serve::ServeConfig tiny;
    tiny.port = 0;
    tiny.checkpoint = checkpoint;
    tiny.coach = world.coach.model->config();
    tiny.workers = 1;
    tiny.queue_depth = 2;
    tiny.fault_plan =
        FaultPlan::Parse("rate=1.0,latency_us=20000,sites=serve.revise")
            .ValueOrDie();
    serve::ModelHost tiny_host(checkpoint, tiny.coach);
    if (!tiny_host.Load().ok()) return 1;
    serve::RevisionServer tiny_server(tiny, &tiny_host);
    if (!tiny_server.StartServing().ok()) return 1;
    LoadResult burst = RunLoad(tiny_server.port(), body, 8,
                               static_cast<int>(Scaled(40, 8)));
    tiny_server.RequestDrain();
    tiny_server.AwaitDrain();
    shed_rate = burst.total() == 0
                    ? 0.0
                    : static_cast<double>(burst.shed) /
                          static_cast<double>(burst.total());
    std::printf(
        "overload burst: %llu requests, %llu shed (%.1f%%), %llu 5xx\n",
        static_cast<unsigned long long>(burst.total()),
        static_cast<unsigned long long>(burst.shed), shed_rate * 100.0,
        static_cast<unsigned long long>(burst.server_5xx));
    if (burst.server_5xx != 0) {
      std::fprintf(stderr, "[bench] FAIL: 5xx under overload\n");
      return 1;
    }
    if (burst.shed == 0) {
      std::fprintf(stderr,
                   "[bench] FAIL: overload produced no sheds (admission "
                   "control inert?)\n");
      return 1;
    }
  }
  bench::Record("shed_rate", shed_rate, "ratio");

  // Phase 3 (in-process only): availability through the resilient client
  // under the default chaos plan — server-side socket chaos (dripped
  // reads, torn writes, EINTR storms, stalls) on the worker loops,
  // client-side chaos including mid-exchange RST on every attempt stream,
  // and retry-with-backoff riding over all of it. Gate: >= 99% of logical
  // requests answered.
  double availability = 1.0;
  if (server != nullptr) {
    serve::ServeConfig chaotic;
    chaotic.port = 0;
    chaotic.checkpoint = checkpoint;
    chaotic.coach = world.coach.model->config();
    chaotic.workers = 4;
    chaotic.queue_depth = 64;
    chaotic.fault_plan =
        FaultPlan::Parse(
            "rate=0.2,seed=42,latency_us=2000,"
            "sites=chaos.read+chaos.write+chaos.eintr+chaos.stall")
            .ValueOrDie();
    serve::ModelHost chaos_host(checkpoint, chaotic.coach);
    if (!chaos_host.Load().ok()) return 1;
    serve::RevisionServer chaos_server(chaotic, &chaos_host);
    if (!chaos_server.StartServing().ok()) return 1;
    const FaultPlan client_chaos =
        FaultPlan::Parse(
            "rate=0.2,seed=7,latency_us=2000,"
            "sites=chaos.read+chaos.write+chaos.eintr+chaos.stall+chaos.rst")
            .ValueOrDie();
    const int kChaosRequests = static_cast<int>(Scaled(200, 30));
    int answered = 0;
    int recovered = 0;
    for (int i = 0; i < kChaosRequests; ++i) {
      serve::FetchOptions options;
      options.chaos = client_chaos;
      options.retry.max_attempts = 5;
      options.retry.initial_backoff_us = 500;
      options.request_id = static_cast<uint64_t>(i);
      const serve::FetchOutcome outcome = serve::FetchWithRetry(
          chaos_server.port(), "POST", "/v1/revise", body, options);
      if (outcome.answered()) ++answered;
      if (outcome.answered() && outcome.attempts > 1) ++recovered;
    }
    chaos_server.RequestDrain();
    chaos_server.AwaitDrain();
    availability =
        static_cast<double>(answered) / static_cast<double>(kChaosRequests);
    std::printf(
        "chaos availability: %d/%d answered (%.2f%%), %d recovered by "
        "retry\n",
        answered, kChaosRequests, availability * 100.0, recovered);
    if (availability < 0.99) {
      std::fprintf(stderr,
                   "[bench] FAIL: availability %.4f under the default chaos "
                   "plan (require >= 0.99)\n",
                   availability);
      return 1;
    }
    std::error_code ec;
    fs::remove(checkpoint, ec);
  }
  bench::Record("availability", availability, "ratio");
  return 0;
}
