// Reproduces Section IV-A: CoachLM deployed inside the LLM data-management
// platform. A baseline cleaning batch and a CoachLM-precursor batch over
// the same production traffic are compared on annotation throughput
// (paper: ~80 -> ~100 pairs/person-day, net +15-20% after deducting the
// annotators' proficiency gain; inference 1.19 samples/s on one A100).

#include "bench_common.h"
#include "common/table_writer.h"
#include "platform/platform.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Section IV-A", "platform deployment efficiency");
  bench::World world = bench::BuildWorld();

  platform::PlatformConfig config;
  config.batch_size = Scaled(40000, 1000);
  platform::DataPlatform platform(config);

  std::fprintf(stderr, "[bench] cleaning batch WITHOUT CoachLM...\n");
  const platform::BatchReport baseline = platform.RunCleaningBatch(nullptr);
  std::fprintf(stderr, "[bench] cleaning batch WITH CoachLM precursor...\n");
  const platform::BatchReport with_coach =
      platform.RunCleaningBatch(&world.coach.model.value());

  TableWriter table({"Batch", "Pairs", "Remaining edit (chars/pair)",
                     "Person-days", "Pairs/person-day"});
  table.AddRow({"Rule scripts + manual", std::to_string(baseline.pairs),
                TableWriter::Num(baseline.mean_remaining_edit, 0),
                TableWriter::Num(baseline.person_days, 0),
                TableWriter::Num(baseline.pairs_per_person_day)});
  table.AddRow({"+ CoachLM precursor", std::to_string(with_coach.pairs),
                TableWriter::Num(with_coach.mean_remaining_edit, 0),
                TableWriter::Num(with_coach.person_days, 0),
                TableWriter::Num(with_coach.pairs_per_person_day)});
  std::printf("%s", table.ToAscii().c_str());

  std::printf("CoachLM inference: %.2f samples/s over %zu pairs "
              "(paper: 1.19 samples/s, batch 32, one A100)\n",
              with_coach.coach_samples_per_sec, with_coach.pairs);
  std::printf("gross throughput gain: %+.1f%%\n",
              (with_coach.pairs_per_person_day /
                   baseline.pairs_per_person_day - 1.0) * 100.0);
  std::printf("net gain after proficiency deduction: %+.1f%% "
              "(paper: +15-20%%)\n",
              platform.NetImprovement(baseline, with_coach) * 100.0);
  return 0;
}
