// Corpus I/O throughput: one synthetic corpus serialized as JSONL and as
// the binary columnar format, then scanned end-to-end through each
// backend. Reports records/s and MB/s per path plus the binary-over-JSONL
// speedup — the number the format exists to move (target: >= 3x on the
// zero-copy scan). Decoded contents are checksummed and compared across
// backends, so the run doubles as a cross-format equivalence check.

#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <string>

#include "bench_common.h"
#include "common/table_writer.h"
#include "data/binary_corpus.h"
#include "data/corpus_io.h"
#include "data/record_stream.h"
#include "json/jsonl.h"

namespace coachlm {
namespace bench {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

uint64_t FoldField(std::string_view text, uint64_t h) {
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t FoldPair(const InstructionPair& pair, uint64_t h) {
  h ^= pair.id;
  h *= 1099511628211ULL;
  h = FoldField(pair.instruction, h);
  h = FoldField(pair.input, h);
  h = FoldField(pair.output, h);
  return h;
}

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr int kRepeats = 3;

struct ScanResult {
  double seconds = 0.0;  ///< best of kRepeats
  uint64_t hash = kFnvBasis;
  uint64_t records = 0;
};

template <typename Fn>
ScanResult BestOf(Fn&& scan_once) {
  ScanResult best;
  for (int r = 0; r < kRepeats; ++r) {
    ScanResult attempt;
    attempt.seconds = Seconds([&] { attempt = scan_once(attempt); });
    if (r == 0 || attempt.seconds < best.seconds) best = attempt;
  }
  return best;
}

int Run() {
  PrintHeader("micro: corpus io",
              "JSONL vs binary columnar scan throughput, one corpus");

  synth::CorpusConfig config;
  config.size = Scaled(60000, 4000);
  config.seed = 42;
  const synth::SynthCorpus corpus = synth::SynthCorpusGenerator(config)
                                        .Generate();
  const InstructionDataset& dataset = corpus.dataset;

  const std::string jsonl_path = TempPath("coachlm_bench_io.jsonl");
  const std::string binary_path = TempPath("coachlm_bench_io.clmb");
  CorpusWriteOptions jsonl_options;
  jsonl_options.format = CorpusFormat::kJsonl;
  double jsonl_write_seconds = 0.0;
  double binary_write_seconds = 0.0;
  Status io = Status::OK();
  jsonl_write_seconds =
      Seconds([&] { io = SaveCorpus(jsonl_path, dataset, jsonl_options); });
  if (io.ok()) {
    CorpusWriteOptions binary_options;
    binary_options.format = CorpusFormat::kBinary;
    binary_write_seconds = Seconds(
        [&] { io = SaveCorpus(binary_path, dataset, binary_options); });
  }
  if (!io.ok()) {
    std::fprintf(stderr, "bench corpus write failed: %s\n",
                 io.ToString().c_str());
    return 1;
  }
  const auto file_bytes = [](const std::string& path) {
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    return ec ? 0.0 : static_cast<double>(bytes);
  };
  const double jsonl_bytes = file_bytes(jsonl_path);
  const double binary_bytes = file_bytes(binary_path);

  // JSONL: the text baseline — full parse + materialized pairs.
  const ScanResult jsonl = BestOf([&](ScanResult out) {
    auto reader = JsonlRecordReader::Open(jsonl_path);
    if (!reader.ok()) return out;
    InstructionPair pair;
    while (true) {
      auto more = (*reader)->Next(&pair);
      if (!more.ok() || !*more) break;
      out.hash = FoldPair(pair, out.hash);
      ++out.records;
    }
    return out;
  });

  // Binary, materialized: same Next() contract as JSONL, mapped blocks.
  const ScanResult materialized = BestOf([&](ScanResult out) {
    auto reader = BinaryCorpusReader::Open(binary_path);
    if (!reader.ok()) return out;
    InstructionPair pair;
    while (true) {
      auto more = (*reader)->Next(&pair);
      if (!more.ok() || !*more) break;
      out.hash = FoldPair(pair, out.hash);
      ++out.records;
    }
    return out;
  });

  // Binary, zero-copy: RecordViews straight into the mapping.
  const ScanResult zero_copy = BestOf([&](ScanResult out) {
    auto reader = BinaryCorpusReader::Open(binary_path);
    if (!reader.ok()) return out;
    const Status scanned = (*reader)->Scan([&](const RecordView& view) {
      uint64_t h = out.hash;
      h ^= view.id;
      h *= 1099511628211ULL;
      h = FoldField(view.instruction, h);
      h = FoldField(view.input, h);
      h = FoldField(view.output, h);
      out.hash = h;
      ++out.records;
    });
    if (!scanned.ok()) out.records = 0;
    return out;
  });

  struct Row {
    const char* name;
    const ScanResult* result;
    double bytes;
  };
  const Row rows[] = {
      {"jsonl parse", &jsonl, jsonl_bytes},
      {"binary Next()", &materialized, binary_bytes},
      {"binary Scan()", &zero_copy, binary_bytes},
  };
  TableWriter table({"Path", "records/s", "MB/s", "vs jsonl"});
  const double jsonl_rate =
      jsonl.seconds > 0 ? static_cast<double>(jsonl.records) / jsonl.seconds
                        : 0.0;
  for (const Row& row : rows) {
    const double rate =
        row.result->seconds > 0
            ? static_cast<double>(row.result->records) / row.result->seconds
            : 0.0;
    table.AddRow({row.name, TableWriter::Num(rate, 0),
                  TableWriter::Num(row.bytes / 1e6 / row.result->seconds, 1),
                  jsonl_rate > 0 ? TableWriter::Num(rate / jsonl_rate, 2) + "x"
                                 : "-"});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf("file bytes: jsonl %.0f, binary %.0f (%.2fx smaller)\n",
              jsonl_bytes, binary_bytes,
              binary_bytes > 0 ? jsonl_bytes / binary_bytes : 0.0);
  std::printf("write seconds: jsonl %.3f, binary %.3f\n", jsonl_write_seconds,
              binary_write_seconds);

  const bool hashes_match = jsonl.records == dataset.size() &&
                            materialized.records == dataset.size() &&
                            zero_copy.records == dataset.size() &&
                            jsonl.hash == materialized.hash &&
                            jsonl.hash == zero_copy.hash;
  std::printf("decoded contents identical across backends: %s\n",
              hashes_match ? "yes" : "NO (format equivalence violation)");

  const double scan_rate =
      zero_copy.seconds > 0
          ? static_cast<double>(zero_copy.records) / zero_copy.seconds
          : 0.0;
  const double speedup = jsonl_rate > 0 ? scan_rate / jsonl_rate : 0.0;
  Record("jsonl_records_per_sec", jsonl_rate, "records/s");
  Record("binary_scan_records_per_sec", scan_rate, "records/s");
  Record("binary_scan_speedup_vs_jsonl", speedup, "ratio");
  Record("binary_bytes_per_record",
         dataset.empty() ? 0.0
                         : binary_bytes / static_cast<double>(dataset.size()),
         "bytes");
  std::printf("binary Scan() speedup over jsonl: %.2fx (target >= 3x)\n",
              speedup);

  std::remove(jsonl_path.c_str());
  std::remove(binary_path.c_str());
  return hashes_match && speedup >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace coachlm

int main() { return coachlm::bench::Run(); }
