// Reproduces Table VIII: three human reviewers score 150 randomly sampled
// pairs of the revised dataset (original vs CoachLM-revised), plus the
// subset whose INSTRUCTIONS were modified — where the paper reports the
// largest response gains.

#include "bench_common.h"
#include "common/table_writer.h"
#include "judge/human_panel.h"

using namespace coachlm;

namespace {

struct SideScores {
  double r[3] = {0, 0, 0};
  size_t n = 0;
  void Add(const judge::PanelScores& scores) {
    for (int i = 0; i < 3; ++i) r[i] += scores.reviewer[i];
    ++n;
  }
  std::vector<std::string> Row(const std::string& label) const {
    std::vector<std::string> row = {label};
    double sum = 0;
    for (int i = 0; i < 3; ++i) {
      const double mean = n ? r[i] / static_cast<double>(n) : 0.0;
      row.push_back(TableWriter::Num(mean));
      sum += mean;
    }
    row.push_back(TableWriter::Num(sum / 3.0));
    return row;
  }
};

}  // namespace

int main() {
  bench::PrintHeader("Table VIII",
                     "human evaluation of data quality (150 sampled pairs)");
  bench::World world = bench::BuildWorld();

  // 150 random pairs from the revised dataset, plus the subset with
  // modified instructions, exactly as in Section III-B3.
  Rng rng(888);
  std::vector<size_t> indices(world.corpus.dataset.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(&indices);
  indices.resize(std::min<size_t>(150, indices.size()));

  judge::HumanPanel panel(31);
  SideScores orig_resp, revised_resp;
  SideScores orig_resp_mod, revised_resp_mod;
  SideScores orig_instr_mod, revised_instr_mod;
  size_t modified_instructions = 0;
  for (size_t i : indices) {
    const InstructionPair& original = world.corpus.dataset[i];
    const InstructionPair& revised = world.coach.revised_dataset[i];
    orig_resp.Add(panel.RateResponse(original));
    revised_resp.Add(panel.RateResponse(revised));
    if (original.FullInstruction() != revised.FullInstruction()) {
      ++modified_instructions;
      orig_instr_mod.Add(panel.RateInstruction(original));
      revised_instr_mod.Add(panel.RateInstruction(revised));
      orig_resp_mod.Add(panel.RateResponse(original));
      revised_resp_mod.Add(panel.RateResponse(revised));
    }
  }

  std::printf("Randomly sampled %zu pairs — RESPONSE scores "
              "(paper: 71.2 -> 75.4 avg)\n",
              indices.size());
  TableWriter responses({"Dataset", "R1", "R2", "R3", "Avg."});
  responses.AddRow(orig_resp.Row("Original"));
  responses.AddRow(revised_resp.Row("CoachLM-revised"));
  std::printf("%s\n", responses.ToAscii().c_str());

  std::printf("%zu samples with modified INSTRUCTIONS "
              "(paper: 18 of 150)\n",
              modified_instructions);
  TableWriter modified({"Dataset", "Instr. avg", "Resp. avg"});
  auto avg3 = [](const SideScores& s) {
    return s.n ? (s.r[0] + s.r[1] + s.r[2]) / (3.0 * s.n) : 0.0;
  };
  modified.AddRow({"Original", TableWriter::Num(avg3(orig_instr_mod)),
                   TableWriter::Num(avg3(orig_resp_mod))});
  modified.AddRow({"CoachLM-revised",
                   TableWriter::Num(avg3(revised_instr_mod)),
                   TableWriter::Num(avg3(revised_resp_mod))});
  std::printf("%s", modified.ToAscii().c_str());
  std::printf("(paper: instruction 76.2 -> 79.0; response 68.4 -> 76.8 on "
              "the modified subset)\n");
  return 0;
}
