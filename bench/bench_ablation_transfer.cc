// Transfer validation (Section VI future work: "validating CoachLM on a
// more diverse range of instruction datasets"): the coach is trained on
// the ALPACA52K-like study, then applied unchanged to a *different*
// distribution — noisy production user traffic (higher deficiency, other
// defect mix) — and the quality movement is measured on both.

#include "bench_common.h"
#include "common/table_writer.h"
#include "quality/accuracy_rater.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Ablation (future work)",
                     "cross-dataset transfer of a trained CoachLM");
  bench::World world = bench::BuildWorld();
  quality::AccuracyRater rater;

  // The out-of-distribution corpus: production-like traffic with a
  // different defect mix (the platform's collection profile).
  synth::CorpusConfig traffic_config;
  traffic_config.size = Scaled(20000, 1500);
  traffic_config.seed = 777;
  traffic_config.deficiency_rate = 0.55;
  traffic_config.exclusion_rate = 0.08;
  const synth::SynthCorpus traffic =
      synth::SynthCorpusGenerator(traffic_config).Generate();

  coach::RevisionPassStats stats;
  const InstructionDataset traffic_revised =
      world.coach.model->ReviseDataset(traffic.dataset, {}, &stats);

  TableWriter table({"Dataset", "Stage", "Mean rating", "> 4.5"});
  const auto in_before = rater.RateDataset(world.corpus.dataset);
  const auto in_after = rater.RateDataset(world.coach.revised_dataset);
  table.AddRow({"ALPACA52K-like (in-dist.)", "original",
                TableWriter::Num(in_before.mean, 2),
                TableWriter::Pct(in_before.fraction_above_45)});
  table.AddRow({"", "CoachLM-revised", TableWriter::Num(in_after.mean, 2),
                TableWriter::Pct(in_after.fraction_above_45)});
  table.AddSeparator();
  const auto out_before = rater.RateDataset(traffic.dataset);
  const auto out_after = rater.RateDataset(traffic_revised);
  table.AddRow({"Production traffic (out-of-dist.)", "original",
                TableWriter::Num(out_before.mean, 2),
                TableWriter::Pct(out_before.fraction_above_45)});
  table.AddRow({"", "CoachLM-revised", TableWriter::Num(out_after.mean, 2),
                TableWriter::Pct(out_after.fraction_above_45)});
  std::printf("%s", table.ToAscii().c_str());
  std::printf("the coach was trained only on the in-distribution study; "
              "the out-of-distribution lift shows the learned revision "
              "behaviour transfers across instruction datasets.\n");
  return 0;
}
