#ifndef COACHLM_BENCH_BENCH_COMMON_H_
#define COACHLM_BENCH_BENCH_COMMON_H_

// Shared setup for the table/figure reproduction binaries. Every bench is
// deterministic; COACHLM_SCALE (0 < s <= 1) shrinks the corpus for smoke
// runs, with 1.0 (the default) reproducing paper scale (52k corpus, 6k
// expert sample).

#include <cstdio>
#include <functional>
#include <memory>

#include "coach/pipeline.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/report.h"
#include "expert/pipeline.h"
#include "synth/generator.h"

namespace coachlm {
namespace bench {

/// Wall-clock seconds spent in \p fn, read through the sanctioned Clock
/// (common/clock.h is the one place allowed to touch steady_clock), so
/// benches stay determinism-raw-clock clean: timings are wall time, but the
/// *data* a bench emits never depends on them.
inline double Seconds(const std::function<void()>& fn) {
  Clock* clock = Clock::System();
  const int64_t start_micros = clock->NowMicros();
  fn();
  return static_cast<double>(clock->NowMicros() - start_micros) / 1e6;
}

/// Everything the experiments share: the corpus, the expert study, and the
/// coach pipeline output at the main-experiment settings (alpha = 0.3,
/// ChatGLM2 backbone).
struct World {
  std::unique_ptr<synth::SynthCorpusGenerator> generator;
  synth::SynthCorpus corpus;
  expert::RevisionStudyResult study;
  coach::CoachPipelineResult coach;
};

inline World BuildWorld(bool with_coach = true) {
  World world;
  synth::CorpusConfig corpus_config;
  corpus_config.size = Scaled(52000, 2000);
  corpus_config.seed = 42;
  world.generator =
      std::make_unique<synth::SynthCorpusGenerator>(corpus_config);
  std::fprintf(stderr, "[bench] generating corpus (%zu pairs)...\n",
               corpus_config.size);
  world.corpus = world.generator->Generate();

  expert::RevisionStudyConfig study_config;
  study_config.sample_size = Scaled(6000, 400);
  std::fprintf(stderr, "[bench] expert revision study (%zu sampled)...\n",
               study_config.sample_size);
  world.study = expert::RunRevisionStudy(
      world.corpus.dataset, world.generator->engine(), study_config);

  if (with_coach) {
    std::fprintf(stderr, "[bench] coach tuning + dataset revision...\n");
    coach::CoachConfig coach_config;
    coach_config.alpha = 0.3;
    world.coach = coach::RunCoachPipeline(world.corpus.dataset,
                                          world.study.revisions,
                                          coach_config);
  }
  return world;
}

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(synthetic reproduction; COACHLM_SCALE=%.3f)\n",
              ExperimentScale());
  std::printf("=============================================================\n");
  // Every bench emits at least one measurement through the shared report
  // schema: when COACHLM_BENCH_REPORT names a file, one compact
  // kind="bench" line per process is appended at exit (the BENCH_*.json
  // trajectory CI accumulates). Benches add their headline numbers with
  // Record().
  BenchReport::SetArtifact(artifact);
  BenchReport::Record("scale", ExperimentScale(), "ratio");
}

/// Buffers one headline measurement for this bench's report line.
inline void Record(const char* name, double value, const char* unit) {
  BenchReport::Record(name, value, unit);
}

}  // namespace bench
}  // namespace coachlm

#endif  // COACHLM_BENCH_BENCH_COMMON_H_
