// Reproduces Table IX: WR1/WR2/QS win rates of the baseline and stronger
// LLM groups against reference responses on all four instruction-following
// test sets, judged by the PandaLM-style judge with swap-order debiasing.
//
// Pass --per-category to additionally print Alpaca-CoachLM vs AlpaGasus per
// category on CoachLM150 (the filtering-vs-revision diversity ablation of
// Section II-A(3)).

#include <cstring>

#include "bench_common.h"
#include "common/table_writer.h"
#include "testsets/testset.h"
#include "tuning/evaluation.h"
#include "tuning/model_zoo.h"

using namespace coachlm;

int main(int argc, char** argv) {
  const bool per_category =
      argc > 1 && std::strcmp(argv[1], "--per-category") == 0;
  bench::PrintHeader("Table IX",
                     "win rates of LLMs against reference responses on four "
                     "test sets (PandaLM-judged, swap-debiased)");
  bench::World world = bench::BuildWorld();

  tuning::ZooInputs inputs;
  inputs.original = &world.corpus.dataset;
  inputs.human_merged = &world.study.merged_dataset;
  inputs.coach_revised = &world.coach.revised_dataset;
  tuning::InstructionTuner tuner;

  std::vector<tuning::ZooEntry> rows = tuning::BuildStrongerGroup();
  std::vector<tuning::ZooEntry> baselines =
      tuning::BuildBaselineGroup(inputs, tuner);
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  const auto test_sets = testsets::AllTestSets();

  auto print_group = [&](const char* title,
                         const std::vector<tuning::ZooEntry>& group) {
    std::printf("\n--- %s ---\n", title);
    std::vector<std::string> headers = {"Model", "Size", "Type"};
    for (const auto& set : test_sets) {
      headers.push_back(set.name + " WR1");
      headers.push_back("WR2");
      headers.push_back("QS");
    }
    TableWriter table(headers);
    for (const auto& entry : group) {
      std::vector<std::string> row = {entry.model.spec().name,
                                      entry.model.spec().size_label,
                                      entry.type};
      for (const auto& set : test_sets) {
        const auto eval = tuning::EvaluateModel(entry.model, set, panda);
        row.push_back(TableWriter::Pct(eval.rates.wr1));
        row.push_back(TableWriter::Pct(eval.rates.wr2));
        row.push_back(TableWriter::Pct(eval.rates.qs));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToAscii().c_str());
  };

  // The paper shows Alpaca-CoachLM in both groups; mirror that.
  std::vector<tuning::ZooEntry> stronger = rows;
  for (const auto& entry : baselines) {
    if (entry.model.spec().name == "Alpaca-CoachLM") {
      stronger.push_back(entry);
    }
  }
  print_group("Stronger LLMs", stronger);
  print_group("Baseline LLMs", baselines);
  std::printf("\npaper anchors (CoachLM150 WR1): Alpaca 48.0%%, AlpaGasus "
              "49.7%%, Vicuna-7b 60.0%%, Alpaca-human 52.0%%, "
              "Alpaca-CoachLM 67.7%%\n");

  if (per_category) {
    std::printf("\n--- Diversity ablation: per-category WR1 on CoachLM150 "
                "(AlpaGasus filtering vs CoachLM revision) ---\n");
    const tuning::ZooEntry* gasus = nullptr;
    const tuning::ZooEntry* coach_entry = nullptr;
    for (const auto& entry : baselines) {
      if (entry.model.spec().name == "AlpaGasus") gasus = &entry;
      if (entry.model.spec().name == "Alpaca-CoachLM") coach_entry = &entry;
    }
    const auto set = testsets::CoachLm150();
    const auto gasus_by_cat =
        tuning::EvaluateModelPerCategory(gasus->model, set, panda);
    const auto coach_by_cat =
        tuning::EvaluateModelPerCategory(coach_entry->model, set, panda);
    TableWriter table({"Category", "AlpaGasus WR1", "Alpaca-CoachLM WR1"});
    for (Category category :
         {Category::kCoding, Category::kCodeExplanation,
          Category::kDebuggingHelp, Category::kGeneralQa,
          Category::kSummarization, Category::kStoryWriting}) {
      auto g = gasus_by_cat.find(category);
      auto c = coach_by_cat.find(category);
      table.AddRow({CategoryName(category),
                    g == gasus_by_cat.end()
                        ? "-"
                        : TableWriter::Pct(g->second.rates.wr1),
                    c == coach_by_cat.end()
                        ? "-"
                        : TableWriter::Pct(c->second.rates.wr1)});
    }
    std::printf("%s", table.ToAscii().c_str());
    std::printf("(the paper attributes AlpaGasus' coding weakness to its "
                "high filtering ratio of code pairs)\n");
  }
  return 0;
}
