// Pipeline throughput across execution-context widths: every corpus-scale
// stage runs at 1/2/4/N threads on one long-lived ExecutionContext each,
// reporting pairs (or items) per second and the speedup over the serial
// width. Outputs are hashed and compared across widths, so the run doubles
// as an end-to-end determinism check at bench scale.

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/execution.h"
#include "common/table_writer.h"
#include "judge/pairwise_judge.h"
#include "quality/accuracy_rater.h"
#include "testsets/testset.h"
#include "tuning/evaluation.h"
#include "tuning/instruction_tuner.h"
#include "tuning/model_spec.h"

namespace coachlm {
namespace bench {
namespace {

std::vector<size_t> Widths() {
  std::vector<size_t> widths = {1, 2, 4};
  const size_t hardware = ExecutionContext::Default().num_threads();
  if (hardware > 4) widths.push_back(hardware);
  return widths;
}

uint64_t Fnv1a(const std::string& text, uint64_t h) {
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashDataset(const InstructionDataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  for (const InstructionPair& pair : dataset) {
    h = Fnv1a(pair.ToJson().Dump(), h);
  }
  return h;
}

int Run() {
  PrintHeader("parallel throughput",
              "corpus-scale stages at 1/2/4/N execution-context threads");
  // Speedups are bounded by the physical core count: on a single-core
  // host every width timeshares one CPU and the table degenerates to ~1x
  // (while still exercising the determinism contract).
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());

  synth::CorpusConfig corpus_config;
  corpus_config.size = Scaled(12000, 1200);
  corpus_config.seed = 42;
  synth::SynthCorpusGenerator generator(corpus_config);
  const synth::SynthCorpus corpus = generator.Generate();

  expert::RevisionStudyConfig study_config;
  study_config.sample_size = Scaled(3000, 300);
  const auto study = expert::RunRevisionStudy(corpus.dataset,
                                              generator.engine(),
                                              study_config);
  coach::CoachConfig coach_config;
  coach_config.alpha = 0.3;
  const coach::CoachLm model =
      coach::CoachTrainer(coach_config).Train(study.revisions);

  const tuning::InstructionTuner tuner;
  const tuning::TunedModel tuned =
      tuner.Tune(tuning::Llama7BBase("bench"), corpus.dataset);
  const judge::PairwiseJudge panda(judge::PandaLmProfile());
  const testsets::TestSet test_set = testsets::CoachLm150();

  const std::vector<size_t> widths = Widths();
  struct Stage {
    std::string name;
    size_t items;
    std::function<uint64_t(const ExecutionContext&)> run;
  };
  const std::vector<Stage> stages = {
      {"generate", corpus_config.size,
       [&](const ExecutionContext& exec) {
         return HashDataset(generator.Generate(exec).dataset);
       }},
      {"expert study", study_config.sample_size,
       [&](const ExecutionContext& exec) {
         return HashDataset(expert::RunRevisionStudy(corpus.dataset,
                                                     generator.engine(),
                                                     study_config, {}, exec)
                                .merged_dataset);
       }},
      {"coach revise", corpus.dataset.size(),
       [&](const ExecutionContext& exec) {
         return HashDataset(
             model.ReviseDataset(corpus.dataset, {}, nullptr, exec));
       }},
      {"rate", corpus.dataset.size(),
       [&](const ExecutionContext& exec) {
         const auto rating =
             quality::AccuracyRater().RateDataset(corpus.dataset, exec);
         uint64_t h = 1469598103934665603ULL;
         for (double r : rating.ratings) {
           h = Fnv1a(std::to_string(r), h);
         }
         return h;
       }},
      {"judge evaluate", test_set.items.size(),
       [&](const ExecutionContext& exec) {
         const auto eval = tuning::EvaluateModel(tuned, test_set, panda,
                                                 /*seed=*/5150, exec);
         return (eval.counts.wins << 16) ^ (eval.counts.ties << 8) ^
                eval.counts.losses;
       }},
  };

  std::vector<std::string> header = {"Stage"};
  for (size_t width : widths) {
    header.push_back("t=" + std::to_string(width) + " (items/s)");
  }
  header.push_back("speedup@4");
  TableWriter table(header);

  std::vector<double> total_seconds(widths.size(), 0.0);
  bool all_identical = true;
  for (const Stage& stage : stages) {
    std::vector<std::string> row = {stage.name};
    double serial_seconds = 0.0;
    double at4_seconds = 0.0;
    uint64_t serial_hash = 0;
    for (size_t w = 0; w < widths.size(); ++w) {
      const ExecutionContext exec(widths[w]);
      uint64_t hash = 0;
      const double seconds = Seconds([&] { hash = stage.run(exec); });
      total_seconds[w] += seconds;
      if (widths[w] == 1) {
        serial_seconds = seconds;
        serial_hash = hash;
      } else if (hash != serial_hash) {
        all_identical = false;
      }
      if (widths[w] == 4) at4_seconds = seconds;
      row.push_back(TableWriter::Num(
          static_cast<double>(stage.items) / seconds, 0));
    }
    row.push_back(at4_seconds > 0
                      ? TableWriter::Num(serial_seconds / at4_seconds, 2) + "x"
                      : "-");
    table.AddRow(row);
  }

  std::vector<std::string> total_row = {"end-to-end"};
  for (size_t w = 0; w < widths.size(); ++w) {
    total_row.push_back(TableWriter::Num(total_seconds[w], 2) + " s");
  }
  double at4_total = 0.0;
  for (size_t w = 0; w < widths.size(); ++w) {
    if (widths[w] == 4) at4_total = total_seconds[w];
  }
  total_row.push_back(
      at4_total > 0 ? TableWriter::Num(total_seconds[0] / at4_total, 2) + "x"
                    : "-");
  table.AddRow(total_row);

  std::printf("%s", table.ToAscii().c_str());
  std::printf("outputs byte-identical across widths: %s\n",
              all_identical ? "yes" : "NO (determinism violation)");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace coachlm

int main() { return coachlm::bench::Run(); }
