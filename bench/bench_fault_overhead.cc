// Overhead guard for the fault-tolerant runtime envelope on the revise
// stage: a disabled-injector PipelineRuntime (the envelope with nothing to
// inject — retry loop, attempt counters, quarantine plumbing all armed)
// must cost < 1% over the legacy fast path. Both paths revise the same
// corpus; min-of-N timing suppresses scheduler noise and the outputs are
// hashed so the run doubles as a byte-identity check.

#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.h"
#include "common/execution.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/runtime.h"
#include "common/table_writer.h"
#include "lm/pair_text.h"

using namespace coachlm;

namespace {

uint64_t HashDataset(const InstructionDataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  for (const InstructionPair& pair : dataset) {
    const std::string text = lm::SerializePair(pair);
    for (unsigned char c : text) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

int main() {
  bench::PrintHeader("Guard", "disabled-injector overhead on revise stage");
  const bench::World world = bench::BuildWorld(true);
  const coach::CoachLm& model = *world.coach.model;
  const InstructionDataset& dataset = world.corpus.dataset;
  const ExecutionContext exec;

  // Disabled injector inside an otherwise fully armed runtime: every item
  // still pays for the Run() envelope, but no fault ever fires.
  PipelineRuntime enveloped{FaultInjector(FaultPlan()), RetryPolicy()};

  constexpr int kReps = 7;
  double fast_path = 1e300, envelope = 1e300;
  uint64_t fast_hash = 0, envelope_hash = 0;
  // Interleave the reps so slow drift (thermal, cache) hits both equally;
  // one untimed warm-up rep primes allocators and page cache.
  model.ReviseDataset(dataset, {}, nullptr, exec);
  for (int rep = 0; rep < kReps; ++rep) {
    fast_path = std::min(fast_path, bench::Seconds([&] {
      fast_hash = HashDataset(model.ReviseDataset(dataset, {}, nullptr, exec,
                                                  /*runtime=*/nullptr));
    }));
    envelope = std::min(envelope, bench::Seconds([&] {
      envelope_hash = HashDataset(
          model.ReviseDataset(dataset, {}, nullptr, exec, &enveloped));
    }));
  }

  const double overhead_pct = (envelope / fast_path - 1.0) * 100.0;
  TableWriter table({"Path", "min seconds", "pairs/s"});
  const auto rate = [&](double s) {
    return std::to_string(
        static_cast<long long>(static_cast<double>(dataset.size()) / s));
  };
  table.AddRow({"legacy fast path", std::to_string(fast_path),
                rate(fast_path)});
  table.AddRow({"runtime envelope (injector off)", std::to_string(envelope),
                rate(envelope)});
  std::printf("%s", table.ToAscii().c_str());
  std::printf("envelope overhead: %+.3f%% (budget < 1%%, min of %d reps)\n",
              overhead_pct, kReps);
  bench::Record("fast_path_seconds", fast_path, "s");
  bench::Record("envelope_seconds", envelope, "s");
  bench::Record("envelope_overhead", overhead_pct, "%");

  if (fast_hash != envelope_hash) {
    std::printf("FAIL: envelope output diverged from fast path "
                "(%016llx vs %016llx)\n",
                static_cast<unsigned long long>(envelope_hash),
                static_cast<unsigned long long>(fast_hash));
    return 1;
  }
  if (overhead_pct >= 1.0) {
    std::printf("FAIL: disabled-injector envelope exceeds the 1%% budget\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
