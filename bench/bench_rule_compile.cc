// Throughput gate for the compiled rule engine (docs/RULE_ENGINE.md).
//
// Trains one rule store, then revises the same corpus through both
// engines — scan (per-rule table probing) and compiled (shared automaton +
// fingerprint prefilter) — and reports compile cost, per-pair apply cost,
// and the speedup. The revised datasets are hashed against each other, so
// every run of the gate re-proves the byte-identity contract on a real
// trained store before trusting the timing. CI appends the report line to
// the BENCH_rules.json trajectory.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "coach/trainer.h"
#include "common/execution.h"
#include "lm/pair_text.h"
#include "lm/rule_compile.h"

using namespace coachlm;

namespace {

uint64_t HashDataset(const InstructionDataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  for (const InstructionPair& pair : dataset) {
    const std::string text = lm::SerializePair(pair);
    for (unsigned char c : text) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

int main() {
  bench::PrintHeader("Gate", "compiled rule engine: compile + apply cost");
  const bench::World world = bench::BuildWorld(false);
  const InstructionDataset& dataset = world.corpus.dataset;

  coach::CoachConfig scan_config;
  scan_config.alpha = 0.3;
  scan_config.compiled_rules = false;
  coach::CoachConfig compiled_config = scan_config;
  compiled_config.compiled_rules = true;

  std::fprintf(stderr, "[bench] coach tuning (both engines)...\n");
  const coach::CoachLm scan_model =
      coach::CoachTrainer(scan_config).Train(world.study.revisions);

  // Compile cost: rebuild the compiled artifact repeatedly, the way every
  // serve hot reload does.
  constexpr int kCompileReps = 20;
  double compile_seconds = 1e300;
  for (int rep = 0; rep < kCompileReps; ++rep) {
    compile_seconds = std::min(compile_seconds, bench::Seconds([&] {
      const lm::CompiledRuleSet compiled(scan_model.rules(),
                                         scan_config.min_rule_support);
      if (compiled.num_patterns() == 0) std::abort();
    }));
  }
  const coach::CoachLm compiled_model =
      coach::CoachTrainer(compiled_config).Train(world.study.revisions);
  const lm::CompiledRuleSet& artifact = *compiled_model.compiled_rules();
  std::printf("rule store        : %zu patterns, %zu automaton states\n",
              artifact.num_patterns(),
              artifact.matcher_automaton().num_states());
  std::printf("compile (best)    : %.3f ms\n", compile_seconds * 1e3);

  // Apply cost over the corpus, engine vs engine; interleaved reps with an
  // untimed warm-up, best-of like the other guards.
  const ExecutionContext exec;
  constexpr int kReps = 5;
  double scan_seconds = 1e300, compiled_seconds = 1e300;
  uint64_t scan_hash = 0, compiled_hash = 0;
  scan_model.ReviseDataset(dataset, {}, nullptr, exec);
  compiled_model.ReviseDataset(dataset, {}, nullptr, exec);
  for (int rep = 0; rep < kReps; ++rep) {
    scan_seconds = std::min(scan_seconds, bench::Seconds([&] {
      scan_hash =
          HashDataset(scan_model.ReviseDataset(dataset, {}, nullptr, exec));
    }));
    compiled_seconds = std::min(compiled_seconds, bench::Seconds([&] {
      compiled_hash = HashDataset(
          compiled_model.ReviseDataset(dataset, {}, nullptr, exec));
    }));
  }
  if (scan_hash != compiled_hash) {
    std::fprintf(stderr,
                 "FAIL: engines diverged (scan %016llx, compiled %016llx)\n",
                 static_cast<unsigned long long>(scan_hash),
                 static_cast<unsigned long long>(compiled_hash));
    return 1;
  }
  const double items = static_cast<double>(dataset.size());
  const double speedup = scan_seconds / compiled_seconds;
  std::printf("scan engine       : %.2f s (%.0f pairs/s)\n", scan_seconds,
              items / scan_seconds);
  std::printf("compiled engine   : %.2f s (%.0f pairs/s)\n",
              compiled_seconds, items / compiled_seconds);
  std::printf("speedup           : %.2fx (byte-identical output)\n",
              speedup);

  bench::Record("compile_ms", compile_seconds * 1e3, "ms");
  bench::Record("automaton_states",
                static_cast<double>(artifact.matcher_automaton().num_states()),
                "states");
  bench::Record("patterns", static_cast<double>(artifact.num_patterns()),
                "patterns");
  bench::Record("scan_pairs_per_s", items / scan_seconds, "pairs/s");
  bench::Record("compiled_pairs_per_s", items / compiled_seconds, "pairs/s");
  bench::Record("apply_speedup", speedup, "ratio");
  return 0;
}
