// Overhead guard for the observability layer on the revise hot loop.
//
// Two budgets, both < 1% against the same baseline:
//   - disarmed: instrumentation compiled in but Observability disabled (the
//     default for every run without --metrics-out) — each site is one
//     relaxed load and a branch, so this path must be free;
//   - armed: metrics + tracing collecting (real clock), the cost an
//     operator pays for a run report.
// Since the disarmed path is a strict subset of the armed one, holding the
// armed budget bounds both; measuring them separately catches a regression
// that sneaks per-item work behind the Enabled() check. The revised
// datasets are hashed so the run doubles as a byte-identity check:
// instrumentation must observe the pipeline, never steer it.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.h"
#include "common/execution.h"
#include "common/trace.h"
#include "common/table_writer.h"
#include "lm/pair_text.h"

using namespace coachlm;

namespace {

uint64_t HashDataset(const InstructionDataset& dataset) {
  uint64_t h = 1469598103934665603ULL;
  for (const InstructionPair& pair : dataset) {
    const std::string text = lm::SerializePair(pair);
    for (unsigned char c : text) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

int main() {
  bench::PrintHeader("Guard", "observability overhead on revise stage");
  const bench::World world = bench::BuildWorld(true);
  const coach::CoachLm& model = *world.coach.model;
  const InstructionDataset& dataset = world.corpus.dataset;
  const ExecutionContext exec;

  constexpr int kReps = 7;
  double disarmed = 1e300, armed = 1e300;
  uint64_t disarmed_hash = 0, armed_hash = 0;
  // Interleave the reps so slow drift (thermal, cache) hits both equally;
  // one untimed warm-up rep primes allocators and page cache. Each armed
  // rep resets the collected state so the trace does not grow across reps.
  model.ReviseDataset(dataset, {}, nullptr, exec);
  for (int rep = 0; rep < kReps; ++rep) {
    Observability::Default().Disable();
    disarmed = std::min(disarmed, bench::Seconds([&] {
      disarmed_hash = HashDataset(model.ReviseDataset(dataset, {}, nullptr,
                                                      exec));
    }));
    Observability::Default().Enable(/*deterministic=*/false);
    armed = std::min(armed, bench::Seconds([&] {
      armed_hash = HashDataset(model.ReviseDataset(dataset, {}, nullptr,
                                                   exec));
    }));
  }
  Observability::Default().Disable();

  const double overhead_pct = (armed / disarmed - 1.0) * 100.0;
  TableWriter table({"Path", "min seconds", "pairs/s"});
  const auto rate = [&](double s) {
    return std::to_string(
        static_cast<long long>(static_cast<double>(dataset.size()) / s));
  };
  table.AddRow({"observability disarmed", std::to_string(disarmed),
                rate(disarmed)});
  table.AddRow({"observability armed (metrics + trace)",
                std::to_string(armed), rate(armed)});
  std::printf("%s", table.ToAscii().c_str());
  std::printf("armed overhead: %+.3f%% (budget < 1%%, min of %d reps)\n",
              overhead_pct, kReps);
  bench::Record("disarmed_seconds", disarmed, "s");
  bench::Record("armed_seconds", armed, "s");
  bench::Record("armed_overhead", overhead_pct, "%");

  if (disarmed_hash != armed_hash) {
    std::printf("FAIL: armed output diverged from disarmed "
                "(%016llx vs %016llx)\n",
                static_cast<unsigned long long>(armed_hash),
                static_cast<unsigned long long>(disarmed_hash));
    return 1;
  }
  if (overhead_pct >= 1.0) {
    std::printf("FAIL: observability exceeds the 1%% budget\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
