// Reproduces Table X: the three human reviewers independently rate the
// responses of Alpaca and Alpaca-CoachLM on the CoachLM150 test set
// (paper: average 58.6 vs 64.3, every reviewer preferring Alpaca-CoachLM).

#include "bench_common.h"
#include "common/table_writer.h"
#include "judge/human_panel.h"
#include "testsets/testset.h"
#include "tuning/instruction_tuner.h"
#include "tuning/model_zoo.h"

using namespace coachlm;

int main() {
  bench::PrintHeader("Table X",
                     "human evaluation of Alpaca vs Alpaca-CoachLM on "
                     "CoachLM150");
  bench::World world = bench::BuildWorld();

  tuning::InstructionTuner tuner;
  const tuning::TunedModel alpaca =
      tuner.Tune(tuning::Llama7BBase("Alpaca"), world.corpus.dataset);
  const tuning::TunedModel coached = tuner.Tune(
      tuning::Llama7BBase("Alpaca-CoachLM"), world.coach.revised_dataset);

  const testsets::TestSet set = testsets::CoachLm150();
  judge::HumanPanel panel(64);
  double alpaca_sum[3] = {0, 0, 0};
  double coached_sum[3] = {0, 0, 0};
  for (const InstructionPair& item : set.items) {
    Rng rng_a(1000 + item.id);
    Rng rng_c(1000 + item.id);
    const auto alpaca_scores =
        panel.RateResponseText(item, alpaca.Respond(item, &rng_a));
    const auto coached_scores =
        panel.RateResponseText(item, coached.Respond(item, &rng_c));
    for (int r = 0; r < 3; ++r) {
      alpaca_sum[r] += alpaca_scores.reviewer[r];
      coached_sum[r] += coached_scores.reviewer[r];
    }
  }
  const double n = static_cast<double>(set.items.size());
  TableWriter table({"Model", "R1", "R2", "R3", "Avg."});
  auto row = [&](const char* name, const double* sums) {
    const double avg = (sums[0] + sums[1] + sums[2]) / (3 * n);
    table.AddRow({name, TableWriter::Num(sums[0] / n),
                  TableWriter::Num(sums[1] / n),
                  TableWriter::Num(sums[2] / n), TableWriter::Num(avg)});
    return avg;
  };
  const double alpaca_avg = row("Alpaca", alpaca_sum);
  const double coached_avg = row("Alpaca-CoachLM", coached_sum);
  std::printf("%s", table.ToAscii().c_str());
  std::printf("paper: Alpaca 58.6 avg, Alpaca-CoachLM 64.3 avg "
              "(measured gap: %+.1f)\n",
              coached_avg - alpaca_avg);
  return 0;
}
