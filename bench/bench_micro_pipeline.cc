// Micro benchmarks of the pipeline stages: corpus generation, quality
// scoring, rule extraction, CoachLM inference, and judging — the costs
// behind the Section IV-A throughput figures.

#include <benchmark/benchmark.h>

#include "coach/trainer.h"
#include "expert/pipeline.h"
#include "lm/rule_extractor.h"
#include "judge/pairwise_judge.h"
#include "quality/criteria.h"
#include "synth/generator.h"

namespace coachlm {
namespace {

struct Fixture {
  Fixture() {
    synth::CorpusConfig config;
    config.size = 2000;
    config.seed = 42;
    synth::SynthCorpusGenerator generator(config);
    corpus = generator.Generate();
    expert::RevisionStudyConfig study_config;
    study_config.sample_size = 600;
    study = expert::RunRevisionStudy(corpus.dataset, generator.engine(),
                                     study_config);
    coach::CoachConfig coach_config;
    coach_config.alpha = 0.3;
    model = std::make_unique<coach::CoachLm>(
        coach::CoachTrainer(coach_config).Train(study.revisions));
  }
  synth::SynthCorpus corpus;
  expert::RevisionStudyResult study;
  std::unique_ptr<coach::CoachLm> model;
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

void BM_GeneratePair(benchmark::State& state) {
  synth::CorpusConfig config;
  synth::SynthCorpusGenerator generator(config);
  Rng rng(1);
  uint64_t id = 0;
  for (auto _ : state) {
    InstructionPair pair;
    std::vector<synth::DefectType> defects;
    generator.GeneratePair(++id, &rng, &pair, &defects);
    benchmark::DoNotOptimize(pair);
  }
}
BENCHMARK(BM_GeneratePair);

void BM_ScorePair(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quality::ScorePair(fixture.corpus.dataset[i++ % 2000]));
  }
}
BENCHMARK(BM_ScorePair);

void BM_RuleExtraction(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    lm::RuleExtractor extractor;
    for (size_t i = 0; i < 50 && i < fixture.study.revisions.size(); ++i) {
      extractor.Consume(fixture.study.revisions[i]);
    }
    benchmark::DoNotOptimize(extractor.Finalize());
  }
}
BENCHMARK(BM_RuleExtraction);

void BM_CoachRevise(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  Rng rng(2);
  size_t i = 0;
  size_t revised = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.model->Revise(fixture.corpus.dataset[i++ % 2000], &rng));
    ++revised;
  }
  state.SetItemsProcessed(static_cast<int64_t>(revised));
}
BENCHMARK(BM_CoachRevise);

/// Engine A/B on the same trained rules: state.range(0) selects the scan
/// (0) or compiled (1) rule engine — the before/after pair behind the
/// docs/RULE_ENGINE.md numbers.
void BM_CoachReviseEngine(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  coach::CoachConfig config;
  config.alpha = 0.3;
  config.compiled_rules = state.range(0) == 1;
  const coach::CoachLm model(config, fixture.model->rules());
  Rng rng(2);
  size_t i = 0;
  size_t revised = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Revise(fixture.corpus.dataset[i++ % 2000], &rng));
    ++revised;
  }
  state.SetItemsProcessed(static_cast<int64_t>(revised));
  state.SetLabel(config.compiled_rules ? "compiled" : "scan");
}
BENCHMARK(BM_CoachReviseEngine)->Arg(0)->Arg(1);

/// Cost of one rule-store compilation — what every serve hot reload pays
/// on top of reading the checkpoint.
void BM_RuleCompile(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  const lm::RuleStore& rules = fixture.model->rules();
  for (auto _ : state) {
    const lm::CompiledRuleSet compiled(rules, 2);
    benchmark::DoNotOptimize(compiled.num_patterns());
  }
}
BENCHMARK(BM_RuleCompile);

void BM_JudgeCompareDebiased(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  const judge::PairwiseJudge judge(judge::PandaLmProfile());
  Rng rng(3);
  const InstructionPair& a = fixture.corpus.dataset[0];
  const InstructionPair& b = fixture.corpus.dataset[1];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        judge.CompareDebiased(a, a.output, b.output, &rng));
  }
}
BENCHMARK(BM_JudgeCompareDebiased);

void BM_ExpertRevise(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  synth::ContentEngine engine;
  expert::ExpertReviser reviser(&engine);
  Rng rng(4);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reviser.Revise(fixture.corpus.dataset[i++ % 2000], &rng));
  }
}
BENCHMARK(BM_ExpertRevise);

}  // namespace
}  // namespace coachlm

BENCHMARK_MAIN();
